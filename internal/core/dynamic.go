package core

import (
	"fmt"
	"math"
	"sort"
)

// Dynamic1D adds insert support to a PolyFit index — the paper's stated
// future work ("we will further develop some efficient techniques ... for
// handling the dynamic case"). The design is the standard delta-buffer
// scheme: inserts land in a sorted in-memory buffer that queries consult
// exactly, and once the buffer outgrows a fraction of the base the static
// index is rebuilt over the merged data.
//
// Because the buffer is aggregated exactly, every guarantee of the static
// index carries over unchanged: a COUNT/SUM answer is (static ± εabs) +
// (buffer, exact) and MIN/MAX combines two values each within the bound.
// Deletions are not supported (they would break the non-negative-measure
// assumption behind the relative-error lemmas); distinct keys are enforced
// exactly as in the static build.
type Dynamic1D struct {
	agg  Agg
	opt  Options
	base *Index1D

	keys     []float64 // all base keys (kept for rebuilds)
	measures []float64
	bufKeys  []float64 // sorted insert buffer
	bufVals  []float64

	// RebuildFraction triggers a merge-rebuild when the buffer exceeds this
	// fraction of the base size (default 1/8).
	RebuildFraction float64
	rebuilds        int
}

// NewDynamic builds a dynamic index of the given aggregate over the initial
// dataset.
func NewDynamic(agg Agg, keys, measures []float64, opt Options) (*Dynamic1D, error) {
	d := &Dynamic1D{
		agg:             agg,
		opt:             opt,
		keys:            append([]float64(nil), keys...),
		measures:        append([]float64(nil), measures...),
		RebuildFraction: 0.125,
	}
	if err := d.rebuild(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dynamic1D) rebuild() error {
	if len(d.bufKeys) > 0 {
		mergedK := make([]float64, 0, len(d.keys)+len(d.bufKeys))
		mergedM := make([]float64, 0, len(d.keys)+len(d.bufKeys))
		i, j := 0, 0
		for i < len(d.keys) || j < len(d.bufKeys) {
			if j == len(d.bufKeys) || (i < len(d.keys) && d.keys[i] < d.bufKeys[j]) {
				mergedK = append(mergedK, d.keys[i])
				mergedM = append(mergedM, d.measures[i])
				i++
			} else {
				mergedK = append(mergedK, d.bufKeys[j])
				mergedM = append(mergedM, d.bufVals[j])
				j++
			}
		}
		d.keys, d.measures = mergedK, mergedM
		d.bufKeys, d.bufVals = nil, nil
	}
	var base *Index1D
	var err error
	switch d.agg {
	case Count:
		base, err = BuildCount(d.keys, d.opt)
	case Sum:
		base, err = BuildSum(d.keys, d.measures, d.opt)
	case Max:
		base, err = BuildMax(d.keys, d.measures, d.opt)
	case Min:
		base, err = BuildMin(d.keys, d.measures, d.opt)
	default:
		return fmt.Errorf("core: unknown aggregate %v", d.agg)
	}
	if err != nil {
		return err
	}
	d.base = base
	d.rebuilds++
	return nil
}

// Insert adds a (key, measure) record. Duplicate keys (in the base or the
// buffer) are rejected, preserving the paper's distinct-key assumption.
// COUNT indexes ignore the measure.
func (d *Dynamic1D) Insert(key, measure float64) error {
	if d.agg == Count {
		measure = 1
	}
	if i := sort.SearchFloat64s(d.keys, key); i < len(d.keys) && d.keys[i] == key {
		return fmt.Errorf("core: duplicate key %g", key)
	}
	i := sort.SearchFloat64s(d.bufKeys, key)
	if i < len(d.bufKeys) && d.bufKeys[i] == key {
		return fmt.Errorf("core: duplicate key %g", key)
	}
	d.bufKeys = append(d.bufKeys, 0)
	d.bufVals = append(d.bufVals, 0)
	copy(d.bufKeys[i+1:], d.bufKeys[i:])
	copy(d.bufVals[i+1:], d.bufVals[i:])
	d.bufKeys[i] = key
	d.bufVals[i] = measure
	threshold := int(d.RebuildFraction * float64(len(d.keys)))
	if threshold < 64 {
		threshold = 64
	}
	if len(d.bufKeys) >= threshold {
		return d.rebuild()
	}
	return nil
}

// bufferSum aggregates the buffer exactly over (lq, uq].
func (d *Dynamic1D) bufferSum(lq, uq float64) float64 {
	lo := sort.Search(len(d.bufKeys), func(i int) bool { return d.bufKeys[i] > lq })
	s := 0.0
	for i := lo; i < len(d.bufKeys) && d.bufKeys[i] <= uq; i++ {
		s += d.bufVals[i]
	}
	return s
}

// bufferExtremum aggregates the buffer exactly over [lq, uq].
func (d *Dynamic1D) bufferExtremum(lq, uq float64) (float64, bool) {
	lo := sort.SearchFloat64s(d.bufKeys, lq)
	best := math.Inf(-1)
	if d.agg == Min {
		best = math.Inf(1)
	}
	found := false
	for i := lo; i < len(d.bufKeys) && d.bufKeys[i] <= uq; i++ {
		found = true
		if d.agg == Max && d.bufVals[i] > best || d.agg == Min && d.bufVals[i] < best {
			best = d.bufVals[i]
		}
	}
	return best, found
}

// RangeSum answers an approximate COUNT/SUM over (lq, uq]; the absolute
// guarantee of the base index is preserved (the buffer part is exact).
func (d *Dynamic1D) RangeSum(lq, uq float64) (float64, error) {
	v, err := d.base.RangeSum(lq, uq)
	if err != nil {
		return 0, err
	}
	return v + d.bufferSum(lq, uq), nil
}

// RangeExtremum answers an approximate MIN/MAX over [lq, uq].
func (d *Dynamic1D) RangeExtremum(lq, uq float64) (float64, bool, error) {
	v, ok, err := d.base.RangeExtremum(lq, uq)
	if err != nil {
		return 0, false, err
	}
	bv, bok := d.bufferExtremum(lq, uq)
	switch {
	case !ok && !bok:
		return 0, false, nil
	case !ok:
		return bv, true, nil
	case !bok:
		return v, true, nil
	}
	if d.agg == Max {
		return math.Max(v, bv), true, nil
	}
	return math.Min(v, bv), true, nil
}

// Rebuild forces an immediate merge-rebuild.
func (d *Dynamic1D) Rebuild() error { return d.rebuild() }

// Len returns the total number of records (base + buffer).
func (d *Dynamic1D) Len() int { return len(d.keys) + len(d.bufKeys) }

// BufferLen returns the number of not-yet-merged inserts.
func (d *Dynamic1D) BufferLen() int { return len(d.bufKeys) }

// Rebuilds returns how many times the static index was (re)built, counting
// the initial construction.
func (d *Dynamic1D) Rebuilds() int { return d.rebuilds }

// Base exposes the current static index (for stats/inspection).
func (d *Dynamic1D) Base() *Index1D { return d.base }
