package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Dynamic1D adds insert support to a PolyFit index — the paper's stated
// future work ("we will further develop some efficient techniques ... for
// handling the dynamic case"). The design is the standard delta-buffer
// scheme: inserts land in a sorted in-memory buffer that queries consult
// exactly, and once the buffer outgrows a fraction of the base the static
// index is rebuilt over the merged data.
//
// Because the buffer is aggregated exactly, every guarantee of the static
// index carries over unchanged: a COUNT/SUM answer is (static ± εabs) +
// (buffer, exact) and MIN/MAX combines two values each within the bound.
// Deletions are not supported (they would break the non-negative-measure
// assumption behind the relative-error lemmas); distinct keys are enforced
// exactly as in the static build.
//
// # Concurrency
//
// Dynamic1D is safe for concurrent use. All query state (base index, data
// arrays, insert buffer, buffer prefix sums) lives in one immutable
// snapshot behind an atomic pointer; queries load the pointer and never
// take a lock, so reads never block — not even behind a merge-rebuild,
// which constructs the new base off to the side and publishes it with a
// single pointer swap. Mutators (Insert, Rebuild) serialise on an RWMutex
// and publish copy-on-write snapshots. RebuildFraction must be set before
// the index is shared between goroutines.
type Dynamic1D struct {
	agg Agg
	opt Options

	// state is the immutable snapshot all queries read. Mutators build a
	// fresh dynState and Store it; they never modify a published one.
	state atomic.Pointer[dynState]

	// mu serialises mutators and guards rebuilds. Queries never take it.
	mu       sync.RWMutex
	rebuilds int // guarded by mu

	// gen counts successful mutations (inserts and rebuilds). It is the
	// cache/coalescing invalidation token of the serving layer: two reads
	// at the same generation observe the same snapshot contents.
	gen atomic.Uint64

	// RebuildFraction triggers a merge-rebuild when the buffer exceeds this
	// fraction of the base size (default 1/8). Set it before sharing the
	// index between goroutines.
	RebuildFraction float64
}

// dynState is one immutable snapshot of everything a query touches.
type dynState struct {
	base     *Index1D
	keys     []float64 // all base keys (kept for rebuilds)
	measures []float64
	bufKeys  []float64 // sorted insert buffer
	bufVals  []float64
	bufPre   []float64 // prefix sums over bufVals (COUNT/SUM only)
}

// NewDynamic builds a dynamic index of the given aggregate over the initial
// dataset.
func NewDynamic(agg Agg, keys, measures []float64, opt Options) (*Dynamic1D, error) {
	d := &Dynamic1D{
		agg:             agg,
		opt:             opt.withDefaults(), // concrete degree, so serialization round-trips it
		RebuildFraction: 0.125,
	}
	st, err := d.buildState(
		append([]float64(nil), keys...),
		append([]float64(nil), measures...),
	)
	if err != nil {
		return nil, err
	}
	d.state.Store(st)
	//lint:ignore lockguard d is still private to this constructor; no other goroutine can hold a reference yet
	d.rebuilds = 1
	return d, nil
}

// Build dispatches a static build for the given aggregate — the single
// construction entry point behind every public builder path (the per-agg
// BuildCount/BuildSum/BuildMax/BuildMin remain for direct use). measures
// may be nil for Count.
func Build(agg Agg, keys, measures []float64, opt Options) (*Index1D, error) {
	switch agg {
	case Count:
		return BuildCount(keys, opt)
	case Sum:
		return BuildSum(keys, measures, opt)
	case Max:
		return BuildMax(keys, measures, opt)
	case Min:
		return BuildMin(keys, measures, opt)
	default:
		return nil, fmt.Errorf("%w: unknown aggregate %v", ErrWrongAgg, agg)
	}
}

// buildState constructs a fresh snapshot (empty buffer) over the given
// arrays, which it takes ownership of.
func (d *Dynamic1D) buildState(keys, measures []float64) (*dynState, error) {
	base, err := Build(d.agg, keys, measures, d.opt)
	if err != nil {
		return nil, err
	}
	return &dynState{base: base, keys: keys, measures: measures}, nil
}

// merge returns the base arrays with the buffer folded in.
func (st *dynState) merge() (keys, measures []float64) {
	keys = make([]float64, 0, len(st.keys)+len(st.bufKeys))
	measures = make([]float64, 0, len(st.keys)+len(st.bufKeys))
	i, j := 0, 0
	for i < len(st.keys) || j < len(st.bufKeys) {
		if j == len(st.bufKeys) || (i < len(st.keys) && st.keys[i] < st.bufKeys[j]) {
			keys = append(keys, st.keys[i])
			measures = append(measures, st.measures[i])
			i++
		} else {
			keys = append(keys, st.bufKeys[j])
			measures = append(measures, st.bufVals[j])
			j++
		}
	}
	return keys, measures
}

// rebuildLocked merges from's buffer into a new base and publishes the
// result. Callers hold d.mu. On a build failure nothing is published: the
// currently visible snapshot stays in place and the error is returned, so
// an Insert that triggered the rebuild fails atomically (its record is
// dropped, matching the error the caller sees).
func (d *Dynamic1D) rebuildLocked(from *dynState) error {
	keys, measures := from.merge()
	st, err := d.buildState(keys, measures)
	if err != nil {
		return err
	}
	d.state.Store(st)
	d.rebuilds++
	d.gen.Add(1)
	return nil
}

// Insert adds a (key, measure) record. Duplicate keys (in the base or the
// buffer) are rejected, preserving the paper's distinct-key assumption, and
// so are NaN/±Inf keys and NaN measures, which would break the sorted-buffer
// invariant. COUNT indexes ignore the measure. If the insert triggers a merge-rebuild
// and the rebuild fails, the insert is dropped and the error returned —
// the visible snapshot never holds a record the caller was told failed.
func (d *Dynamic1D) Insert(key, measure float64) error {
	// Non-finite keys would land at an arbitrary position in the sorted
	// buffer (sort.SearchFloat64s treats NaN comparisons as false), silently
	// corrupting every later answer; NaN measures poison the prefix sums and
	// extrema the same way. Reject both up front, mirroring the strictly-
	// increasing-finite-keys contract the static build enforces.
	if math.IsNaN(key) || math.IsInf(key, 0) {
		return fmt.Errorf("%w: non-finite key %g (keys must be finite, as at build time)", ErrInvalidRecord, key)
	}
	if math.IsNaN(measure) {
		return fmt.Errorf("%w: NaN measure for key %g", ErrInvalidRecord, key)
	}
	if d.agg == Count {
		measure = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if i := sort.SearchFloat64s(st.keys, key); i < len(st.keys) && st.keys[i] == key {
		return fmt.Errorf("%w: %g", ErrDuplicateKey, key)
	}
	i := sort.SearchFloat64s(st.bufKeys, key)
	if i < len(st.bufKeys) && st.bufKeys[i] == key {
		return fmt.Errorf("%w: %g", ErrDuplicateKey, key)
	}
	// Copy-on-write: concurrent queries may be reading the current slices,
	// so each insert publishes fresh buffer arrays. This costs O(b) copies
	// per insert — the same order as the sorted in-place insertion it
	// replaces — in exchange for lock-free readers; the buffer is capped
	// at max(64, n/8) records by the rebuild threshold.
	nb := len(st.bufKeys) + 1
	bufKeys := make([]float64, nb)
	bufVals := make([]float64, nb)
	copy(bufKeys, st.bufKeys[:i])
	copy(bufVals, st.bufVals[:i])
	bufKeys[i] = key
	bufVals[i] = measure
	copy(bufKeys[i+1:], st.bufKeys[i:])
	copy(bufVals[i+1:], st.bufVals[i:])
	next := &dynState{
		base: st.base, keys: st.keys, measures: st.measures,
		bufKeys: bufKeys, bufVals: bufVals,
	}
	if d.agg == Count || d.agg == Sum {
		// Prefix sums below i are unchanged; bulk-copy them and extend.
		pre := make([]float64, nb)
		copy(pre, st.bufPre[:i])
		run := 0.0
		if i > 0 {
			run = pre[i-1]
		}
		for j := i; j < nb; j++ {
			run += bufVals[j]
			pre[j] = run
		}
		next.bufPre = pre
	}
	threshold := int(d.RebuildFraction * float64(len(st.keys)))
	if threshold < 64 {
		threshold = 64
	}
	if nb >= threshold {
		return d.rebuildLocked(next)
	}
	d.state.Store(next)
	d.gen.Add(1)
	return nil
}

// bufferSum aggregates the buffer exactly over (lq, uq] in O(log b) via the
// snapshot's prefix sums.
func (st *dynState) bufferSum(lq, uq float64) float64 {
	lo := sort.Search(len(st.bufKeys), func(i int) bool { return st.bufKeys[i] > lq })
	hi := sort.Search(len(st.bufKeys), func(i int) bool { return st.bufKeys[i] > uq })
	if hi <= lo {
		return 0
	}
	s := st.bufPre[hi-1]
	if lo > 0 {
		s -= st.bufPre[lo-1]
	}
	return s
}

// bufferExtremum aggregates the buffer exactly over [lq, uq].
func (st *dynState) bufferExtremum(agg Agg, lq, uq float64) (float64, bool) {
	lo := sort.SearchFloat64s(st.bufKeys, lq)
	best := math.Inf(-1)
	if agg == Min {
		best = math.Inf(1)
	}
	found := false
	for i := lo; i < len(st.bufKeys) && st.bufKeys[i] <= uq; i++ {
		found = true
		if agg == Max && st.bufVals[i] > best || agg == Min && st.bufVals[i] < best {
			best = st.bufVals[i]
		}
	}
	return best, found
}

// RangeSum answers an approximate COUNT/SUM over (lq, uq]; the absolute
// guarantee of the base index is preserved (the buffer part is exact).
func (d *Dynamic1D) RangeSum(lq, uq float64) (float64, error) {
	st := d.state.Load()
	v, err := st.base.RangeSum(lq, uq)
	if err != nil {
		return 0, err
	}
	return v + st.bufferSum(lq, uq), nil
}

// RangeSumRel answers a COUNT/SUM query with the relative guarantee εrel
// (Problem 2). The Lemma 3 gate is applied to the combined estimate — the
// buffer part is exact, so the total absolute error is still ≤ 2δ — and on
// failure the base's exact fallback answers, again combined with the exact
// buffer aggregate.
func (d *Dynamic1D) RangeSumRel(lq, uq, epsRel float64) (val float64, usedExact bool, err error) {
	st := d.state.Load()
	base := st.base
	if base.agg != Sum && base.agg != Count {
		return 0, false, ErrWrongAgg
	}
	if epsRel <= 0 {
		return 0, false, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	if uq < lq {
		return 0, false, nil
	}
	a := base.CF(uq) - base.CF(lq) + st.bufferSum(lq, uq)
	if a >= 2*base.delta*(1+1/epsRel) {
		return a, false, nil
	}
	if base.exactCF == nil {
		return 0, false, ErrNoFallback
	}
	return base.exactCF.RangeSum(lq, uq) + st.bufferSum(lq, uq), true, nil
}

// RangeExtremum answers an approximate MIN/MAX over [lq, uq].
func (d *Dynamic1D) RangeExtremum(lq, uq float64) (float64, bool, error) {
	st := d.state.Load()
	v, ok, err := st.base.RangeExtremum(lq, uq)
	if err != nil {
		return 0, false, err
	}
	bv, bok := st.bufferExtremum(d.agg, lq, uq)
	return combineExtrema(d.agg, v, ok, bv, bok)
}

func combineExtrema(agg Agg, v float64, ok bool, bv float64, bok bool) (float64, bool, error) {
	switch {
	case !ok && !bok:
		return 0, false, nil
	case !ok:
		return bv, true, nil
	case !bok:
		return v, true, nil
	}
	if agg == Max {
		return math.Max(v, bv), true, nil
	}
	return math.Min(v, bv), true, nil
}

// RangeExtremumRel answers a MIN/MAX query with the relative guarantee
// εrel. The Lemma 5 gate is applied to the combined estimate (base within
// δ, buffer exact, so the combination is within δ); on failure the base's
// exact aggregate tree answers, combined with the exact buffer extremum.
func (d *Dynamic1D) RangeExtremumRel(lq, uq, epsRel float64) (val float64, usedExact, ok bool, err error) {
	st := d.state.Load()
	base := st.base
	if base.agg != Max && base.agg != Min {
		return 0, false, false, ErrWrongAgg
	}
	if epsRel <= 0 {
		return 0, false, false, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	bv, bok := st.bufferExtremum(d.agg, lq, uq)
	av, aok := base.maxInternal(lq, uq)
	if base.neg {
		av = -av
	}
	v, got, _ := combineExtrema(d.agg, av, aok, bv, bok)
	if got && v >= base.delta*(1+1/epsRel) {
		return v, false, true, nil
	}
	if base.exactExt == nil {
		return 0, false, false, ErrNoFallback
	}
	ev, eok := base.exactExt.Query(lq, uq)
	if base.neg {
		ev = -ev
	}
	v, got, _ = combineExtrema(d.agg, ev, eok, bv, bok)
	return v, true, got, nil
}

// QueryBatch answers many ranges in one call via the base index's
// amortised batch path, folding in the exact buffer aggregate per range.
// COUNT/SUM use (lo, hi] semantics, MIN/MAX use [lo, hi].
func (d *Dynamic1D) QueryBatch(ranges []Range) ([]BatchResult, error) {
	st := d.state.Load()
	out, err := st.base.QueryBatch(ranges)
	if err != nil {
		return nil, err
	}
	switch d.agg {
	case Count, Sum:
		for i, r := range ranges {
			out[i].Value += st.bufferSum(r.Lo, r.Hi)
		}
	default:
		for i, r := range ranges {
			if r.Hi < r.Lo {
				continue
			}
			bv, bok := st.bufferExtremum(d.agg, r.Lo, r.Hi)
			v, ok, _ := combineExtrema(d.agg, out[i].Value, out[i].Found, bv, bok)
			out[i] = BatchResult{Value: v, Found: ok}
		}
	}
	return out, nil
}

// Rebuild forces an immediate merge-rebuild. Queries keep answering from
// the previous snapshot until the new base is published.
func (d *Dynamic1D) Rebuild() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rebuildLocked(d.state.Load())
}

// Aggregate returns the aggregate the index was built for.
func (d *Dynamic1D) Aggregate() Agg { return d.agg }

// Len returns the total number of records (base + buffer).
func (d *Dynamic1D) Len() int {
	st := d.state.Load()
	return len(st.keys) + len(st.bufKeys)
}

// BufferLen returns the number of not-yet-merged inserts.
func (d *Dynamic1D) BufferLen() int { return len(d.state.Load().bufKeys) }

// KeyRange returns the smallest and largest key currently held, base and
// delta buffer combined, from one consistent snapshot.
func (d *Dynamic1D) KeyRange() (lo, hi float64) {
	st := d.state.Load()
	lo, hi = st.base.keyLo, st.base.keyHi
	if n := len(st.bufKeys); n > 0 {
		lo = math.Min(lo, st.bufKeys[0])
		hi = math.Max(hi, st.bufKeys[n-1])
	}
	return lo, hi
}

// BufferSizeBytes returns the exact memory footprint of the insert buffer:
// keys, measures, and (for COUNT/SUM) the prefix-aggregate array.
func (d *Dynamic1D) BufferSizeBytes() int { return d.state.Load().bufferBytes() }

func (st *dynState) bufferBytes() int {
	return 8 * (len(st.bufKeys) + len(st.bufVals) + len(st.bufPre))
}

// Rebuilds returns how many times the static index was (re)built, counting
// the initial construction.
func (d *Dynamic1D) Rebuilds() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rebuilds
}

// Generation returns the mutation counter: it increases on every
// successful Insert and Rebuild, so two queries observing the same
// generation saw the same data. The serving layer keys its singleflight
// coalescing (and any future result cache) on it — staleness is
// structurally impossible because any mutation moves the generation.
func (d *Dynamic1D) Generation() uint64 { return d.gen.Load() }

// Base exposes the current static index (for stats/inspection). The
// returned index is an immutable snapshot; a later merge-rebuild publishes
// a new one rather than mutating it.
func (d *Dynamic1D) Base() *Index1D { return d.state.Load().base }

// DynView is a consistent point-in-time view of a dynamic index, for stats
// reporting.
type DynView struct {
	Base        *Index1D
	Records     int // base + buffer
	BufferLen   int
	BufferBytes int
}

// View returns base and buffer statistics from a single snapshot, so the
// numbers are mutually consistent even under concurrent inserts.
func (d *Dynamic1D) View() DynView {
	st := d.state.Load()
	return DynView{
		Base:        st.base,
		Records:     len(st.keys) + len(st.bufKeys),
		BufferLen:   len(st.bufKeys),
		BufferBytes: st.bufferBytes(),
	}
}
