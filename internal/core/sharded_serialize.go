package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Sharded-index serialization: the POLS container wraps K nested shard
// blobs behind a shard directory. The layout is
//
//	magic "POLS" | version 2 | kind (static|dynamic) | agg | K uint32 |
//	bounds (K−1 float64) | K × (uint64 length + shard blob)
//
// where static containers nest Index1D ("POL1") blobs and dynamic
// containers nest Dynamic1D ("POLD") blobs — so a sharded dynamic blob
// round-trips everything its shards do: options, raw data, delta buffers,
// fitted bases, and (v2) per-shard coefficient encodings. The container
// layout is identical across versions — v2 exists because its nested blobs
// may use the POL1 v2 / POLD v3 formats — and v1 blobs still load.
// Decoding validates the directory (shard count, bound ordering, per-shard
// length) and the cross-shard invariants (uniform aggregate and δ, key
// ranges consistent with the routing bounds) before returning; corrupt,
// truncated, or mismatched blobs error, never panic.

const (
	magicSharded     = uint32(0x504F4C53) // "POLS"
	shardedFormatVer = uint16(2)

	shardKindStatic  = uint8(0)
	shardKindDynamic = uint8(1)
)

// shardedHeader reads and validates the fixed POLS prefix common to both
// kinds, returning the kind, aggregate, and bounds.
func shardedHeader(r *bytes.Reader, data []byte) (kind uint8, agg Agg, bounds []float64, err error) {
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	var ver uint16
	if err := rd(&m); err != nil || m != magicSharded {
		if m == magic1D || m == magicDyn {
			return 0, 0, nil, fmt.Errorf("%w: unsharded index blob (use the matching Unmarshal)", ErrBadFormat)
		}
		return 0, 0, nil, fmt.Errorf("%w: magic", ErrBadFormat)
	}
	if err := rd(&ver); err != nil || (ver != 1 && ver != shardedFormatVer) {
		return 0, 0, nil, fmt.Errorf("%w: sharded format version", ErrBadFormat)
	}
	var aggB uint8
	var k uint32
	if err := firstErr(rd(&kind), rd(&aggB), rd(&k)); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: sharded header", ErrBadFormat)
	}
	if kind != shardKindStatic && kind != shardKindDynamic {
		return 0, 0, nil, fmt.Errorf("%w: sharded kind %d", ErrBadFormat, kind)
	}
	agg = Agg(aggB)
	if agg < Count || agg > Max {
		return 0, 0, nil, fmt.Errorf("%w: aggregate %d", ErrBadFormat, aggB)
	}
	// Each shard needs at least a directory entry (8 bytes) plus a non-empty
	// blob; reject counts the data cannot possibly hold before allocating.
	if k == 0 || k > maxShards || uint64(k) > uint64(len(data))/9+1 {
		return 0, 0, nil, fmt.Errorf("%w: %d shards", ErrBadFormat, k)
	}
	bounds = make([]float64, k-1)
	for i := range bounds {
		if err := rd(&bounds[i]); err != nil {
			return 0, 0, nil, fmt.Errorf("%w: shard bounds", ErrBadFormat)
		}
		if math.IsNaN(bounds[i]) || math.IsInf(bounds[i], 0) {
			return 0, 0, nil, fmt.Errorf("%w: non-finite shard bound", ErrBadFormat)
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			return 0, 0, nil, fmt.Errorf("%w: shard bounds not strictly increasing", ErrBadFormat)
		}
	}
	return kind, agg, bounds, nil
}

// readShardBlob pulls the next directory entry and its nested blob.
func readShardBlob(r *bytes.Reader, i int) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: shard %d directory entry", ErrBadFormat, i)
	}
	if n == 0 || n > uint64(r.Len()) {
		return nil, fmt.Errorf("%w: shard %d blob length %d with %d bytes left", ErrBadFormat, i, n, r.Len())
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("%w: shard %d blob", ErrBadFormat, i)
	}
	return blob, nil
}

func marshalSharded(kind uint8, agg Agg, bounds []float64, shardBlob func(i int) ([]byte, error), k int) ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magicSharded)
	w(shardedFormatVer)
	w(kind)
	w(uint8(agg))
	w(uint32(k))
	for _, b := range bounds {
		w(b)
	}
	for i := 0; i < k; i++ {
		blob, err := shardBlob(i)
		if err != nil {
			return nil, err
		}
		w(uint64(len(blob)))
		buf.Write(blob)
	}
	return buf.Bytes(), nil
}

// MarshalBinary serialises the sharded index as a POLS container of static
// shard blobs. Like Index1D.MarshalBinary, exact fallbacks are not
// serialised: a loaded sharded index serves absolute-guarantee queries and
// returns ErrNoFallback for relative ones.
func (s *Sharded1D) MarshalBinary() ([]byte, error) {
	return marshalSharded(shardKindStatic, s.agg, s.bounds,
		func(i int) ([]byte, error) { return s.shards[i].MarshalBinary() }, len(s.shards))
}

// UnmarshalBinary loads a static POLS container. Dynamic containers are
// rejected with a descriptive error (use RestoreShardedDynamic).
func (s *Sharded1D) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	kind, agg, bounds, err := shardedHeader(r, data)
	if err != nil {
		return err
	}
	if kind != shardKindStatic {
		return fmt.Errorf("%w: dynamic sharded blob (use RestoreShardedDynamic)", ErrBadFormat)
	}
	shards := make([]*Index1D, len(bounds)+1)
	for i := range shards {
		blob, err := readShardBlob(r, i)
		if err != nil {
			return err
		}
		sh := &Index1D{}
		if err := sh.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if sh.agg != agg {
			return fmt.Errorf("%w: shard %d aggregate %v, container says %v", ErrBadFormat, i, sh.agg, agg)
		}
		if i > 0 && sh.delta != shards[0].delta {
			return fmt.Errorf("%w: shard %d delta %g, shard 0 has %g", ErrBadFormat, i, sh.delta, shards[0].delta)
		}
		if i > 0 && sh.keyLo < bounds[i-1] {
			return fmt.Errorf("%w: shard %d key %g below bound %g", ErrBadFormat, i, sh.keyLo, bounds[i-1])
		}
		if i < len(bounds) && sh.keyHi >= bounds[i] {
			return fmt.Errorf("%w: shard %d key %g at or above bound %g", ErrBadFormat, i, sh.keyHi, bounds[i])
		}
		shards[i] = sh
	}
	s.shardSet = shardSet{agg: agg, delta: shards[0].delta, bounds: bounds, qs: queriers(shards)}
	s.shards = shards
	return nil
}

// MarshalBinary serialises the sharded dynamic index as a POLS container of
// dynamic (POLD) shard blobs. Each shard is marshalled from one immutable
// snapshot, so concurrent writers are never blocked; cross-shard
// consistency is per shard (an insert racing the marshal lands in its
// shard's blob or not, independently).
func (s *ShardedDynamic1D) MarshalBinary() ([]byte, error) {
	return marshalSharded(shardKindDynamic, s.agg, s.bounds,
		func(i int) ([]byte, error) { return s.shards[i].MarshalBinary() }, len(s.shards))
}

// MarshalShard serialises one shard alone as a dynamic (POLD) blob — the
// unit of the serving layer's per-shard snapshots.
func (s *ShardedDynamic1D) MarshalShard(i int) ([]byte, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrShardOutOfRange, i, len(s.shards))
	}
	return s.shards[i].MarshalBinary()
}

// RestoreShardedDynamic reconstructs a ShardedDynamic1D from a
// ShardedDynamic1D.MarshalBinary blob. Every shard restores exactly as
// RestoreDynamic would (no re-fitting; fallbacks rebuilt when enabled) and
// the cross-shard invariants are re-validated; corrupt blobs are rejected
// with an error wrapping ErrBadFormat, never a panic.
func RestoreShardedDynamic(data []byte) (*ShardedDynamic1D, error) {
	r := bytes.NewReader(data)
	kind, agg, bounds, err := shardedHeader(r, data)
	if err != nil {
		return nil, err
	}
	if kind != shardKindDynamic {
		return nil, fmt.Errorf("%w: static sharded blob (use Sharded1D.UnmarshalBinary)", ErrBadFormat)
	}
	shards := make([]*Dynamic1D, len(bounds)+1)
	for i := range shards {
		blob, err := readShardBlob(r, i)
		if err != nil {
			return nil, err
		}
		sh, err := RestoreDynamic(blob)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sh.agg != agg {
			return nil, fmt.Errorf("%w: shard %d aggregate %v, container says %v", ErrBadFormat, i, sh.agg, agg)
		}
		shards[i] = sh
	}
	sd, err := AssembleShardedDynamic(bounds, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return sd, nil
}
