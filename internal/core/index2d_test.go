package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func gen2D(n int, seed int64) (xs, ys []float64) {
	return data.GenOSM(n, seed)
}

func exactCountHalfOpen(xs, ys []float64, xlo, xhi, ylo, yhi float64) float64 {
	c := 0.0
	for i := range xs {
		if xs[i] > xlo && xs[i] <= xhi && ys[i] > ylo && ys[i] <= yhi {
			c++
		}
	}
	return c
}

func TestBuild2DValidation(t *testing.T) {
	if _, err := BuildCount2D(nil, nil, Options2D{Delta: 10}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BuildCount2D([]float64{1}, []float64{1, 2}, Options2D{Delta: 10}); err == nil {
		t.Error("mismatched input should error")
	}
}

// TestCount2DAbsoluteGuarantee is the Lemma 6 property: with δ = εabs/4 the
// four-corner estimate is within εabs (plus the documented between-sample
// slack) of the exact count for uniform random rectangles.
func TestCount2DAbsoluteGuarantee(t *testing.T) {
	xs, ys := gen2D(6000, 1)
	const epsAbs = 240.0
	ix, err := BuildCount2D(xs, ys, Options2D{Delta: Delta2DForAbs(epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	if ix.ForcedLeaves() != 0 {
		t.Fatalf("%d forced leaves", ix.ForcedLeaves())
	}
	qs := data.UniformRects(-180, 180, -90, 90, 400, 2)
	within, worst := 0, 0.0
	for _, q := range qs {
		got := ix.RangeCount(q.XLo, q.XHi, q.YLo, q.YHi)
		want := exactCountHalfOpen(xs, ys, q.XLo, q.XHi, q.YLo, q.YHi)
		e := math.Abs(got - want)
		if e <= epsAbs+1e-6 {
			within++
		}
		if e > worst {
			worst = e
		}
	}
	if within < len(qs)*95/100 {
		t.Errorf("only %d/%d queries within εabs=%g (worst %g)", within, len(qs), epsAbs, worst)
	}
	if worst > 2*epsAbs {
		t.Errorf("worst error %g exceeds 2εabs", worst)
	}
}

// TestCount2DRelativeGuarantee is the Lemma 7 property: approximate answers
// respect εrel; fallback answers are exact.
func TestCount2DRelativeGuarantee(t *testing.T) {
	xs, ys := gen2D(6000, 3)
	ix, err := BuildCount2D(xs, ys, Options2D{Delta: 30})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.UniformRects(-180, 180, -90, 90, 300, 4)
	approxUsed := 0
	for _, q := range qs {
		got, usedExact, err := ix.RangeCountRel(q.XLo, q.XHi, q.YLo, q.YHi, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want := exactCountHalfOpen(xs, ys, q.XLo, q.XHi, q.YLo, q.YHi)
		if usedExact {
			if got != want {
				t.Fatalf("exact path returned %g, want %g", got, want)
			}
			continue
		}
		approxUsed++
		if want == 0 {
			t.Fatalf("approximate path used for empty result (got %g)", got)
		}
		if math.Abs(got-want)/want > 0.1+0.05 {
			t.Fatalf("relative error %g too large (got %g want %g)", math.Abs(got-want)/want, got, want)
		}
	}
	if approxUsed == 0 {
		t.Fatal("approximate path never used")
	}
}

func TestCount2DNoFallback(t *testing.T) {
	xs, ys := gen2D(1500, 5)
	ix, err := BuildCount2D(xs, ys, Options2D{Delta: 50, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.RangeCountRel(-10, 10, -10, 10, 1e-9); err != ErrNoFallback {
		t.Errorf("expected ErrNoFallback, got %v", err)
	}
	if ix.ExactRangeCount(-10, 10, -10, 10) != -1 {
		t.Error("ExactRangeCount without fallback should report -1")
	}
	if ix.FallbackSizeBytes() != 0 {
		t.Error("no-fallback index reports fallback bytes")
	}
	if _, _, err := ix.RangeCountRel(0, 1, 0, 1, -2); err == nil {
		t.Error("non-positive εrel should error")
	}
}

func TestCount2DEdgeRects(t *testing.T) {
	xs, ys := gen2D(2000, 7)
	ix, err := BuildCount2D(xs, ys, Options2D{Delta: 25})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.RangeCount(10, 5, 0, 1); got != 0 {
		t.Errorf("inverted rect = %g, want 0", got)
	}
	// Whole domain: ≈ n.
	got := ix.RangeCount(-181, 181, -91, 91)
	if math.Abs(got-2000) > 4*25+1 {
		t.Errorf("whole-domain count = %g, want ≈2000", got)
	}
	// Far outside: 0.
	if got := ix.RangeCount(200, 300, 95, 99); got != 0 {
		t.Errorf("outside-domain count = %g, want 0", got)
	}
	if got := ix.RangeCount(-300, -200, -99, -95); got != 0 {
		t.Errorf("below-domain count = %g, want 0", got)
	}
}

func TestCount2DIntrospection(t *testing.T) {
	xs, ys := gen2D(2500, 9)
	ix, err := BuildCount2D(xs, ys, Options2D{Degree: 2, Delta: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2500 || ix.Delta() != 40 {
		t.Error("Len/Delta wrong")
	}
	if ix.NumLeaves() < 1 || ix.Depth() < 1 {
		t.Error("degenerate tree stats")
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	xlo, xhi, ylo, yhi := ix.Bounds()
	if xlo >= xhi || ylo >= yhi {
		t.Error("degenerate bounds")
	}
	// PolyFit structure must be much smaller than raw points.
	if ix.SizeBytes() >= 16*2500 {
		t.Errorf("index size %dB not smaller than raw data %dB", ix.SizeBytes(), 16*2500)
	}
}

func TestExactRangeCountMatchesBruteForce(t *testing.T) {
	xs, ys := gen2D(3000, 11)
	ix, err := BuildCount2D(xs, ys, Options2D{Delta: 60})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		x1 := -180 + rng.Float64()*360
		x2 := -180 + rng.Float64()*360
		y1 := -90 + rng.Float64()*180
		y2 := -90 + rng.Float64()*180
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		got := float64(ix.ExactRangeCount(x1, x2, y1, y2))
		want := exactCountHalfOpen(xs, ys, x1, x2, y1, y2)
		if got != want {
			t.Fatalf("ExactRangeCount(%g,%g,%g,%g) = %g, want %g", x1, x2, y1, y2, got, want)
		}
	}
}
