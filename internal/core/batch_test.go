package core

import (
	"math"
	"math/rand"
	"testing"
)

// randRanges mixes narrow, wide, empty (Hi < Lo), and out-of-domain ranges.
func randRanges(keys []float64, n int, seed int64) []Range {
	rng := rand.New(rand.NewSource(seed))
	lo, hi := keys[0], keys[len(keys)-1]
	span := hi - lo
	rs := make([]Range, n)
	for i := range rs {
		switch rng.Intn(8) {
		case 0: // inverted (empty)
			a := lo + rng.Float64()*span
			rs[i] = Range{Lo: a + 1, Hi: a}
		case 1: // fully below the domain
			rs[i] = Range{Lo: lo - 3*span - 1, Hi: lo - span - 1}
		case 2: // fully above the domain
			rs[i] = Range{Lo: hi + span, Hi: hi + 2*span}
		case 3: // whole domain and beyond
			rs[i] = Range{Lo: lo - span, Hi: hi + span}
		default: // random sub-range, endpoints often off-key
			a := lo + rng.Float64()*span
			b := lo + rng.Float64()*span
			if a > b {
				a, b = b, a
			}
			rs[i] = Range{Lo: a, Hi: b}
		}
	}
	return rs
}

func TestQueryBatchMatchesSerialSum(t *testing.T) {
	keys, measures := genDataset(5000, 81)
	for _, agg := range []Agg{Count, Sum} {
		var ix *Index1D
		var err error
		if agg == Count {
			ix, err = BuildCount(keys, Options{Delta: 25, NoFallback: true})
		} else {
			ix, err = BuildSum(keys, measures, Options{Delta: 400, NoFallback: true})
		}
		if err != nil {
			t.Fatal(err)
		}
		ranges := randRanges(keys, 700, 82)
		// Exercise both implementations regardless of the adaptive cutoff.
		for _, impl := range []struct {
			name string
			run  func([]Range, []BatchResult)
		}{
			{"direct", ix.batchSumDirect},
			{"sweep", func(r []Range, o []BatchResult) { ix.batchSumSweep(r, o, false) }},
		} {
			got := make([]BatchResult, len(ranges))
			impl.run(ranges, got)
			for i, r := range ranges {
				want, err := ix.RangeSum(r.Lo, r.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if !got[i].Found {
					t.Fatalf("%v/%s range %d: Found=false", agg, impl.name, i)
				}
				if math.Abs(got[i].Value-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%v/%s range %d (%g,%g]: batch %g, serial %g",
						agg, impl.name, i, r.Lo, r.Hi, got[i].Value, want)
				}
			}
		}
		// And the public entry point.
		got, err := ix.QueryBatch(ranges)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range ranges {
			want, _ := ix.RangeSum(r.Lo, r.Hi)
			if math.Abs(got[i].Value-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%v QueryBatch range %d: %g vs %g", agg, i, got[i].Value, want)
			}
		}
	}
}

func TestQueryBatchMatchesSerialExtremum(t *testing.T) {
	keys, measures := genDataset(5000, 83)
	for _, agg := range []Agg{Max, Min} {
		var ix *Index1D
		var err error
		if agg == Max {
			ix, err = BuildMax(keys, measures, Options{Delta: 50, NoFallback: true})
		} else {
			ix, err = BuildMin(keys, measures, Options{Delta: 50, NoFallback: true})
		}
		if err != nil {
			t.Fatal(err)
		}
		ranges := randRanges(keys, 700, 84)
		for _, impl := range []struct {
			name string
			run  func([]Range, []BatchResult)
		}{
			{"direct", ix.batchExtremumDirect},
			{"sweep", func(r []Range, o []BatchResult) { ix.batchExtremumSweep(r, o, false) }},
		} {
			got := make([]BatchResult, len(ranges))
			impl.run(ranges, got)
			for i, r := range ranges {
				want, ok, err := ix.RangeExtremum(r.Lo, r.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Found != ok {
					t.Fatalf("%v/%s range %d [%g,%g]: batch found=%v, serial found=%v",
						agg, impl.name, i, r.Lo, r.Hi, got[i].Found, ok)
				}
				if ok && got[i].Value != want {
					t.Fatalf("%v/%s range %d [%g,%g]: batch %g, serial %g",
						agg, impl.name, i, r.Lo, r.Hi, got[i].Value, want)
				}
			}
		}
	}
}

// TestQueryBatchSortedWindows exercises the presorted fast path: ascending
// non-overlapping windows (the sliding-dashboard shape) skip the sort and
// ride the forward-only cursor.
func TestQueryBatchSortedWindows(t *testing.T) {
	keys, measures := genDataset(6000, 91)
	lo, hi := keys[0], keys[len(keys)-1]
	width := (hi - lo) / 600
	sorted := make([]Range, 500)
	for i := range sorted {
		a := lo + float64(i)*(hi-lo)/500
		sorted[i] = Range{Lo: a, Hi: a + width}
	}
	cnt, err := BuildCount(keys, Options{Delta: 25, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cnt.QueryBatch(sorted)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sorted {
		want, _ := cnt.RangeSum(r.Lo, r.Hi)
		if math.Abs(got[i].Value-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("sorted count window %d: %g vs %g", i, got[i].Value, want)
		}
	}
	mx, err := BuildMax(keys, measures, Options{Delta: 50, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err = mx.QueryBatch(sorted)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sorted {
		want, ok, _ := mx.RangeExtremum(r.Lo, r.Hi)
		if got[i].Found != ok || (ok && got[i].Value != want) {
			t.Fatalf("sorted max window %d: (%g,%v) vs (%g,%v)",
				i, got[i].Value, got[i].Found, want, ok)
		}
	}
}

func TestQueryBatchDynamicIncludesBuffer(t *testing.T) {
	keys, measures := genDataset(2000, 85)
	for _, agg := range []Agg{Count, Sum, Max, Min} {
		d, err := NewDynamic(agg, keys, measures, Options{Delta: 200})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(86))
		for i := 0; i < 40; i++ {
			d.Insert(rng.Float64()*2e6-5e5, rng.Float64()*100) //nolint:errcheck
		}
		if d.BufferLen() == 0 {
			t.Fatal("no inserts landed in the buffer")
		}
		ranges := randRanges(keys, 300, 87)
		got, err := d.QueryBatch(ranges)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range ranges {
			switch agg {
			case Count, Sum:
				want, _ := d.RangeSum(r.Lo, r.Hi)
				if math.Abs(got[i].Value-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%v range %d: batch %g, serial %g", agg, i, got[i].Value, want)
				}
			default:
				want, ok, _ := d.RangeExtremum(r.Lo, r.Hi)
				if got[i].Found != ok || (ok && got[i].Value != want) {
					t.Fatalf("%v range %d: batch (%g,%v), serial (%g,%v)",
						agg, i, got[i].Value, got[i].Found, want, ok)
				}
			}
		}
	}
}
