package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDynamicCountGuaranteeUnderInserts(t *testing.T) {
	keys, _ := genDataset(2000, 51)
	const epsAbs = 30.0
	d, err := NewDynamic(Count, keys, make([]float64, len(keys)), Options{Delta: DeltaForAbs(Count, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	all := append([]float64(nil), keys...)
	// Interleave inserts and guarantee checks.
	for round := 0; round < 10; round++ {
		for i := 0; i < 150; i++ {
			k := rng.NormFloat64()*9e4 + 17 // offset to dodge existing grid
			if err := d.Insert(k, 1); err != nil {
				continue // duplicate — fine
			}
			all = append(all, k)
		}
		for q := 0; q < 30; q++ {
			l := all[rng.Intn(len(all))]
			u := all[rng.Intn(len(all))]
			if l > u {
				l, u = u, l
			}
			got, err := d.RangeSum(l, u)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			for _, k := range all {
				if k > l && k <= u {
					want++
				}
			}
			if math.Abs(got-want) > epsAbs+1e-6 {
				t.Fatalf("round %d: |%g − %g| > εabs after %d inserts", round, got, want, d.Len()-2000)
			}
		}
	}
	if d.Len() != len(all) {
		t.Errorf("Len = %d, want %d", d.Len(), len(all))
	}
}

func TestDynamicRebuildTriggers(t *testing.T) {
	keys, _ := genDataset(1000, 53)
	d, err := NewDynamic(Count, keys, make([]float64, len(keys)), Options{Delta: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rebuilds() != 1 {
		t.Fatalf("initial Rebuilds = %d", d.Rebuilds())
	}
	// Default threshold: max(64, n/8) = 125.
	rng := rand.New(rand.NewSource(54))
	inserted := 0
	for inserted < 200 {
		if err := d.Insert(rng.Float64()*1e6+1e7, 1); err == nil {
			inserted++
		}
	}
	if d.Rebuilds() < 2 {
		t.Errorf("rebuild did not trigger after %d inserts (buffer %d)", inserted, d.BufferLen())
	}
	if d.BufferLen() >= 125 {
		t.Errorf("buffer %d was not flushed", d.BufferLen())
	}
	if d.Base().Len() <= 1000 {
		t.Errorf("base was not merged: %d records", d.Base().Len())
	}
}

func TestDynamicMaxCombinesBuffer(t *testing.T) {
	keys := []float64{10, 20, 30, 40}
	vals := []float64{5, 7, 6, 4}
	d, err := NewDynamic(Max, keys, vals, Options{Degree: 1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// New global maximum lands in the buffer.
	if err := d.Insert(25, 100); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.RangeExtremum(0, 50)
	if err != nil || !ok {
		t.Fatalf("query failed: %v %v", err, ok)
	}
	if v < 100-0.5 {
		t.Errorf("buffered max lost: %g", v)
	}
	// Buffer-only range.
	v, ok, _ = d.RangeExtremum(22, 28)
	if !ok || v < 100-0.5 {
		t.Errorf("buffer-only range = (%g,%v)", v, ok)
	}
	// Base-only range still works.
	v, ok, _ = d.RangeExtremum(10, 20)
	if !ok || math.Abs(v-7) > 0.5+1e-9 {
		t.Errorf("base-only range = (%g,%v), want ≈7", v, ok)
	}
}

func TestDynamicMinViaNegation(t *testing.T) {
	keys := []float64{1, 2, 3}
	vals := []float64{9, 8, 7}
	d, err := NewDynamic(Min, keys, vals, Options{Degree: 1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2.5, 1); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := d.RangeExtremum(0, 5)
	if !ok || v > 1+0.1+1e-9 {
		t.Errorf("dynamic MIN = (%g,%v), want ≈1", v, ok)
	}
}

func TestDynamicDuplicateRejected(t *testing.T) {
	keys := []float64{1, 2, 3}
	d, err := NewDynamic(Count, keys, []float64{1, 1, 1}, Options{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2, 1); err == nil {
		t.Error("duplicate base key accepted")
	}
	if err := d.Insert(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(9, 1); err == nil {
		t.Error("duplicate buffered key accepted")
	}
}

func TestDynamicRelativeQueries(t *testing.T) {
	keys, measures := genDataset(3000, 57)
	d, err := NewDynamic(Sum, keys, measures, Options{Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(58))
	all := append([]float64(nil), keys...)
	vals := append([]float64(nil), measures...)
	for i := 0; i < 120; i++ {
		k, m := rng.Float64()*2e6-5e5, rng.Float64()*100
		if err := d.Insert(k, m); err == nil {
			all = append(all, k)
			vals = append(vals, m)
		}
	}
	const epsRel = 0.01
	for q := 0; q < 100; q++ {
		l := all[rng.Intn(len(all))]
		u := all[rng.Intn(len(all))]
		if l > u {
			l, u = u, l
		}
		got, _, err := d.RangeSumRel(l, u, epsRel)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for i, k := range all {
			if k > l && k <= u {
				want += vals[i]
			}
		}
		if math.Abs(got-want) > epsRel*want+1e-6 {
			t.Fatalf("rel sum |%g − %g| > %g·R", got, want, epsRel)
		}
	}
	// No fallback → ErrNoFallback on a range the gate cannot certify.
	dn, err := NewDynamic(Sum, keys, measures, Options{Delta: 50, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dn.RangeSumRel(keys[0], keys[0], epsRel); err != ErrNoFallback {
		t.Errorf("want ErrNoFallback, got %v", err)
	}
}

func TestDynamicExtremumRel(t *testing.T) {
	keys, measures := genDataset(2000, 59)
	for i := range measures {
		measures[i] = math.Abs(measures[i]) + 1 // rel guarantee needs positives
	}
	d, err := NewDynamic(Max, keys, measures, Options{Delta: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(60))
	all := append([]float64(nil), keys...)
	vals := append([]float64(nil), measures...)
	for i := 0; i < 100; i++ {
		k, m := rng.Float64()*2e6-5e5, rng.Float64()*200+1
		if err := d.Insert(k, m); err == nil {
			all = append(all, k)
			vals = append(vals, m)
		}
	}
	const epsRel = 0.05
	for q := 0; q < 100; q++ {
		l := all[rng.Intn(len(all))]
		u := all[rng.Intn(len(all))]
		if l > u {
			l, u = u, l
		}
		got, _, ok, err := d.RangeExtremumRel(l, u, epsRel)
		if err != nil {
			t.Fatal(err)
		}
		want, found := math.Inf(-1), false
		for i, k := range all {
			if k >= l && k <= u && vals[i] > want {
				want, found = vals[i], true
			}
		}
		if ok != found {
			t.Fatalf("found=%v, want %v for [%g,%g]", ok, found, l, u)
		}
		if found && math.Abs(got-want) > epsRel*want+1e-6 {
			t.Fatalf("rel max |%g − %g| > %g·R", got, want, epsRel)
		}
	}
}

func TestDynamicBufferFootprint(t *testing.T) {
	keys, _ := genDataset(1000, 65)
	d, err := NewDynamic(Sum, keys, make([]float64, len(keys)), Options{Delta: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d.BufferSizeBytes() != 0 {
		t.Errorf("fresh index buffer bytes = %d", d.BufferSizeBytes())
	}
	for i := 0; i < 10; i++ {
		if err := d.Insert(2e7+float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// COUNT/SUM buffers store keys, measures, and prefix sums: 24 B/record.
	if got, want := d.BufferSizeBytes(), 24*10; got != want {
		t.Errorf("buffer bytes = %d, want %d", got, want)
	}
	v := d.View()
	if v.BufferLen != 10 || v.BufferBytes != 240 || v.Records != 1010 || v.Base == nil {
		t.Errorf("bad view %+v", v)
	}
}

// TestDynamicConcurrentStress hammers one index from inserter, reader,
// batch-reader, and rebuilder goroutines; run with -race. Readers assert
// the absolute guarantee against the monotonically growing record count.
func TestDynamicConcurrentStress(t *testing.T) {
	keys, _ := genDataset(2000, 67)
	const epsAbs = 30.0
	d, err := NewDynamic(Count, keys, make([]float64, len(keys)), Options{Delta: DeltaForAbs(Count, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	// Window covering every base key and every possible inserted key.
	lo, hi := math.Min(keys[0], -2e6)-1, math.Max(keys[len(keys)-1], 2e6)+1
	// attempted is bumped before Insert, inserted after it returns, so at
	// any instant the live record count is within [inserted, attempted] —
	// sound bounds for readers even mid-publish.
	var attempted, inserted atomic.Int64
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				attempted.Add(1)
				if err := d.Insert(rng.Float64()*4e6-2e6, 1); err == nil {
					inserted.Add(1)
				} else {
					attempted.Add(-1)
				}
			}
		}(int64(100 + g))
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 5; i++ {
			if err := d.Rebuild(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Full-domain count must be within εabs of the live total,
				// which only grows; a torn read would violate the bound.
				floor := float64(2000 + inserted.Load())
				got, err := d.RangeSum(lo, hi)
				if err != nil {
					t.Error(err)
					return
				}
				ceil := float64(2000 + attempted.Load())
				if got < floor-epsAbs-1e-6 || got > ceil+epsAbs+1e-6 {
					t.Errorf("concurrent count %g outside [%g, %g] ± εabs", got, floor, ceil)
					return
				}
				if rng.Intn(4) == 0 {
					if _, err := d.QueryBatch([]Range{{lo, hi}, {0, 1e5}}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(200 + g))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got, want := d.Len(), 2000+int(inserted.Load()); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	final, err := d.RangeSum(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(final-float64(d.Len())) > epsAbs+1e-6 {
		t.Errorf("final count %g vs %d records", final, d.Len())
	}
}

func TestDynamicForcedRebuildKeepsAnswers(t *testing.T) {
	keys, measures := genDataset(1500, 55)
	d, err := NewDynamic(Sum, keys, measures, Options{Delta: 500})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(56))
	for i := 0; i < 50; i++ {
		d.Insert(rng.Float64()*1e6+2e7, rng.Float64()*10) //nolint:errcheck
	}
	before, _ := d.RangeSum(keys[10], keys[1400])
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	after, _ := d.RangeSum(keys[10], keys[1400])
	if math.Abs(before-after) > 2*500+1e-6 {
		t.Errorf("rebuild moved the answer too far: %g vs %g", before, after)
	}
	if d.BufferLen() != 0 {
		t.Errorf("buffer not flushed by forced rebuild")
	}
}
