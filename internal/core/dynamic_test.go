package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestDynamicCountGuaranteeUnderInserts(t *testing.T) {
	keys, _ := genDataset(2000, 51)
	const epsAbs = 30.0
	d, err := NewDynamic(Count, keys, make([]float64, len(keys)), Options{Delta: DeltaForAbs(Count, epsAbs)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	all := append([]float64(nil), keys...)
	// Interleave inserts and guarantee checks.
	for round := 0; round < 10; round++ {
		for i := 0; i < 150; i++ {
			k := rng.NormFloat64()*9e4 + 17 // offset to dodge existing grid
			if err := d.Insert(k, 1); err != nil {
				continue // duplicate — fine
			}
			all = append(all, k)
		}
		for q := 0; q < 30; q++ {
			l := all[rng.Intn(len(all))]
			u := all[rng.Intn(len(all))]
			if l > u {
				l, u = u, l
			}
			got, err := d.RangeSum(l, u)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			for _, k := range all {
				if k > l && k <= u {
					want++
				}
			}
			if math.Abs(got-want) > epsAbs+1e-6 {
				t.Fatalf("round %d: |%g − %g| > εabs after %d inserts", round, got, want, d.Len()-2000)
			}
		}
	}
	if d.Len() != len(all) {
		t.Errorf("Len = %d, want %d", d.Len(), len(all))
	}
}

func TestDynamicRebuildTriggers(t *testing.T) {
	keys, _ := genDataset(1000, 53)
	d, err := NewDynamic(Count, keys, make([]float64, len(keys)), Options{Delta: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rebuilds() != 1 {
		t.Fatalf("initial Rebuilds = %d", d.Rebuilds())
	}
	// Default threshold: max(64, n/8) = 125.
	rng := rand.New(rand.NewSource(54))
	inserted := 0
	for inserted < 200 {
		if err := d.Insert(rng.Float64()*1e6+1e7, 1); err == nil {
			inserted++
		}
	}
	if d.Rebuilds() < 2 {
		t.Errorf("rebuild did not trigger after %d inserts (buffer %d)", inserted, d.BufferLen())
	}
	if d.BufferLen() >= 125 {
		t.Errorf("buffer %d was not flushed", d.BufferLen())
	}
	if d.Base().Len() <= 1000 {
		t.Errorf("base was not merged: %d records", d.Base().Len())
	}
}

func TestDynamicMaxCombinesBuffer(t *testing.T) {
	keys := []float64{10, 20, 30, 40}
	vals := []float64{5, 7, 6, 4}
	d, err := NewDynamic(Max, keys, vals, Options{Degree: 1, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// New global maximum lands in the buffer.
	if err := d.Insert(25, 100); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.RangeExtremum(0, 50)
	if err != nil || !ok {
		t.Fatalf("query failed: %v %v", err, ok)
	}
	if v < 100-0.5 {
		t.Errorf("buffered max lost: %g", v)
	}
	// Buffer-only range.
	v, ok, _ = d.RangeExtremum(22, 28)
	if !ok || v < 100-0.5 {
		t.Errorf("buffer-only range = (%g,%v)", v, ok)
	}
	// Base-only range still works.
	v, ok, _ = d.RangeExtremum(10, 20)
	if !ok || math.Abs(v-7) > 0.5+1e-9 {
		t.Errorf("base-only range = (%g,%v), want ≈7", v, ok)
	}
}

func TestDynamicMinViaNegation(t *testing.T) {
	keys := []float64{1, 2, 3}
	vals := []float64{9, 8, 7}
	d, err := NewDynamic(Min, keys, vals, Options{Degree: 1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2.5, 1); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := d.RangeExtremum(0, 5)
	if !ok || v > 1+0.1+1e-9 {
		t.Errorf("dynamic MIN = (%g,%v), want ≈1", v, ok)
	}
}

func TestDynamicDuplicateRejected(t *testing.T) {
	keys := []float64{1, 2, 3}
	d, err := NewDynamic(Count, keys, []float64{1, 1, 1}, Options{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2, 1); err == nil {
		t.Error("duplicate base key accepted")
	}
	if err := d.Insert(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(9, 1); err == nil {
		t.Error("duplicate buffered key accepted")
	}
}

func TestDynamicForcedRebuildKeepsAnswers(t *testing.T) {
	keys, measures := genDataset(1500, 55)
	d, err := NewDynamic(Sum, keys, measures, Options{Delta: 500})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(56))
	for i := 0; i < 50; i++ {
		d.Insert(rng.Float64()*1e6+2e7, rng.Float64()*10) //nolint:errcheck
	}
	before, _ := d.RangeSum(keys[10], keys[1400])
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	after, _ := d.RangeSum(keys[10], keys[1400])
	if math.Abs(before-after) > 2*500+1e-6 {
		t.Errorf("rebuild moved the answer too far: %g vs %g", before, after)
	}
	if d.BufferLen() != 0 {
		t.Errorf("buffer not flushed by forced rebuild")
	}
}
