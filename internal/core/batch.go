package core

import "sort"

// Batched queries: the serving layer answers many ranges per request, and
// answering them one by one repeats a binary search over the segment
// boundaries for every endpoint. QueryBatch amortises that work across the
// batch: ranges are processed in ascending order (sorting them first
// unless they already arrive as ascending non-overlapping windows, the
// shape tiled scans and time-bucketed dashboards produce) and the segment
// cursor only moves forward, located by galloping from its previous
// position. Endpoints that land near their predecessor — the
// common case in a sorted batch — cost O(1) instead of O(log h), and the
// cursor touches the segment array sequentially, which is far kinder to
// the cache than q independent binary searches.
//
// Sorting a random batch costs about as much as it saves when the segment
// array is cache-resident (PolyFit compresses aggressively — measured on
// this hardware, sort-then-sweep still loses at h ≈ 15k), so the paths are
// gated: a pre-sorted batch rides the cursor whenever the segment array is
// big enough for binary searches to wander (≥ minSweepSegments, measured
// 2.6× faster at h ≈ 15k), while an unsorted batch is only worth sorting
// when the segment array dwarfs the batch so badly that independent
// binary searches thrash the cache; otherwise ranges are evaluated
// directly, which is what the serving layer's round-trip amortisation
// already made cheap.

// minSweepSegments gates the sweep for pre-sorted batches: below this the
// per-query binary searches are L1-resident and beat the sweep's setup.
const minSweepSegments = 512

// sweepAdvantage gates sort-then-sweep for unsorted batches: the segment
// array must outnumber batch endpoints by this factor before paying the
// sort beats independent cache-thrashing binary searches.
const sweepAdvantage = 64

// Range is one query interval of a batched request. COUNT/SUM indexes use
// the paper's half-open (Lo, Hi] semantics, MIN/MAX the closed [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// BatchResult is the answer to one Range of a batch. Found mirrors the
// single-query API: always true for COUNT/SUM, false for a MIN/MAX range
// containing no records.
type BatchResult struct {
	Value float64
	Found bool
}

// QueryBatch answers every range of the batch, equivalent to calling
// RangeSum (COUNT/SUM) or RangeExtremum (MIN/MAX) per range but with the
// segment location amortised across the batch whenever that is a win.
// Results are returned in input order.
func (ix *Index1D) QueryBatch(ranges []Range) ([]BatchResult, error) {
	out := make([]BatchResult, len(ranges))
	switch ix.agg {
	case Count, Sum:
		h := ix.NumSegments()
		sorted := h >= minSweepSegments && endpointsAscending(ranges)
		if sorted || h >= sweepAdvantage*2*len(ranges) {
			ix.batchSumSweep(ranges, out, sorted)
		} else {
			ix.batchSumDirect(ranges, out)
		}
	case Min, Max:
		h := len(ix.segLo)
		sorted := h >= minSweepSegments && losAscending(ranges)
		if sorted || h >= sweepAdvantage*len(ranges) {
			ix.batchExtremumSweep(ranges, out, sorted)
		} else {
			ix.batchExtremumDirect(ranges, out)
		}
	default:
		return nil, ErrWrongAgg
	}
	return out, nil
}

// endpointsAscending reports whether the interleaved endpoint sequence
// Lo0 ≤ Hi0 ≤ Lo1 ≤ Hi1 ≤ … is already sorted (non-overlapping ascending
// windows), letting the sweep skip its sort.
func endpointsAscending(ranges []Range) bool {
	prev := 0.0
	for i, r := range ranges {
		if r.Hi < r.Lo || (i > 0 && r.Lo < prev) {
			return false
		}
		prev = r.Hi
	}
	return true
}

// losAscending reports whether ranges already ascend by Lo.
func losAscending(ranges []Range) bool {
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo < ranges[i-1].Lo {
			return false
		}
	}
	return true
}

func (ix *Index1D) batchSumDirect(ranges []Range, out []BatchResult) {
	for i, r := range ranges {
		if r.Hi < r.Lo {
			out[i] = BatchResult{Value: 0, Found: true}
			continue
		}
		out[i] = BatchResult{Value: ix.CF(r.Hi) - ix.CF(r.Lo), Found: true}
	}
}

func (ix *Index1D) batchExtremumDirect(ranges []Range, out []BatchResult) {
	for i, r := range ranges {
		v, ok := ix.maxInternal(r.Lo, r.Hi)
		if !ok {
			continue // Found stays false
		}
		if ix.neg {
			v = -v
		}
		out[i] = BatchResult{Value: v, Found: true}
	}
}

// farJumpStep bounds how far the sweep cursors gallop before handing the
// re-seek to the learned root: a short hop stays in the gallop's cache-warm
// window, a far jump resolves in O(1) through the root instead of finishing
// the gallop's binary phase.
const farJumpStep = 32

// advanceLoLE returns the last index j ≥ cur with segLo[j] ≤ x, by
// galloping right from cur; far jumps resolve through the learned root.
// Requires segLo[cur] ≤ x.
func (ix *Index1D) advanceLoLE(cur int, x float64) int {
	segLo := ix.segLo
	h := len(segLo)
	if cur+1 >= h || segLo[cur+1] > x {
		return cur
	}
	step := 1
	for cur+step < h && segLo[cur+step] <= x {
		if step >= farJumpStep {
			return ix.locateLE(x)
		}
		step <<= 1
	}
	winLo, winHi := cur+step>>1, cur+step
	if winHi > h {
		winHi = h
	}
	return winLo + sort.Search(winHi-winLo, func(j int) bool { return segLo[winLo+j] > x }) - 1
}

// advanceHiGE returns the first index j ≥ cur with segHi[j] ≥ x, by
// galloping right from cur (len(segHi) if none); far jumps resolve through
// the learned root.
func (ix *Index1D) advanceHiGE(cur int, x float64) int {
	segHi := ix.segHi
	h := len(segHi)
	if cur >= h || segHi[cur] >= x {
		return cur
	}
	step := 1
	for cur+step < h && segHi[cur+step] < x {
		if step >= farJumpStep {
			return ix.firstHiGE(x)
		}
		step <<= 1
	}
	winLo, winHi := cur+step>>1, cur+step+1
	if winHi > h {
		winHi = h
	}
	return winLo + sort.Search(winHi-winLo, func(j int) bool { return segHi[winLo+j] >= x })
}

// endpoint pairs one batch endpoint with its slot in the evaluation array.
type endpoint struct {
	x  float64
	id int32
}

// advanceLoQLE is advanceLoLE on the packed encoding's quantized grid: the
// endpoint is quantized once and every comparison is an exact uint32
// compare, so the cursor can never disagree with the certified single-query
// locate through float rounding. Requires loQ[cur] ≤ xq or cur == 0.
//
//polyfit:nofloat
func (ix *Index1D) advanceLoQLE(cur int, xq uint32) int {
	loQ := ix.loQ
	h := len(loQ)
	if cur+1 >= h || loQ[cur+1] > xq {
		return cur
	}
	step := 1
	for cur+step < h && loQ[cur+step] <= xq {
		if step >= farJumpStep {
			return ix.locatePackedQ(xq) // gallop invariant: loQ[cur] ≤ xq, so ≥ 0
		}
		step <<= 1
	}
	winLo, winHi := cur+step>>1, cur+step
	if winHi > h {
		winHi = h
	}
	return searchLoQ(loQ, winLo, winHi, xq) - 1
}

// batchSumSweep evaluates CF at all 2q endpoints in ascending order with a
// forward-only segment cursor, then differences per range. Evaluation is
// split into two phases over the structure-of-arrays store: locate+clamp
// first (leaving a segment index and normalised key per endpoint), then one
// branch-free Horner pass per coefficient lane across the whole batch.
func (ix *Index1D) batchSumSweep(ranges []Range, out []BatchResult, presorted bool) {
	n := len(ranges)
	eps := make([]endpoint, 2*n)
	for i, r := range ranges {
		eps[2*i] = endpoint{x: r.Lo, id: int32(2 * i)}
		eps[2*i+1] = endpoint{x: r.Hi, id: int32(2*i + 1)}
	}
	if !presorted {
		sort.Slice(eps, func(a, b int) bool { return eps[a].x < eps[b].x })
	}
	cf := make([]float64, 2*n)
	segs := make([]int32, 0, 2*n)
	ts := make([]float64, 0, 2*n)
	ids := make([]int32, 0, 2*n)
	seg := 0
	packed := ix.enc == EncPacked
	for _, e := range eps {
		x := e.x
		if x < ix.keyLo {
			cf[e.id] = 0
			continue
		}
		if packed {
			seg = ix.advanceLoQLE(seg, ix.quantizeKey(x))
		} else {
			seg = ix.advanceLoLE(seg, x)
		}
		if hi := ix.hiAt(seg); x > hi {
			x = hi // CF is constant across gaps and past the domain
		}
		c, hw := ix.frameAt(seg)
		segs = append(segs, int32(seg))
		ts = append(ts, (x-c)/hw)
		ids = append(ids, e.id)
	}
	ix.evalCFLanes(segs, ts, ids, cf)
	for i, r := range ranges {
		if r.Hi < r.Lo {
			out[i] = BatchResult{Value: 0, Found: true}
			continue
		}
		out[i] = BatchResult{Value: cf[2*i+1] - cf[2*i], Found: true}
	}
}

// evalCFLanes runs Horner lane-by-lane over the located endpoints: for each
// coefficient lane one tight loop of fused multiply-adds over flat slices,
// no per-segment pointers and no branches inside the loop. Each encoding's
// arithmetic matches evalSeg operation for operation, so the batch path is
// bit-identical to the certified single-query path.
func (ix *Index1D) evalCFLanes(segs []int32, ts []float64, ids []int32, cf []float64) {
	acc := make([]float64, len(segs))
	switch ix.enc {
	case EncRaw:
		for j := ix.laneW - 1; j >= 0; j-- {
			lane := ix.laneF64[j]
			for i, s := range segs {
				acc[i] = acc[i]*ts[i] + lane[s]
			}
		}
	case EncF32:
		for j := ix.laneW - 1; j >= 0; j-- {
			lane := ix.laneF32[j]
			for i, s := range segs {
				acc[i] = acc[i]*ts[i] + float64(lane[s])
			}
		}
	default: // EncPacked
		for j := ix.laneW - 1; j >= 0; j-- {
			off, scale := ix.laneOff[j], ix.laneScale[j]
			if lane := ix.laneU16[j]; lane != nil {
				for i, s := range segs {
					acc[i] = acc[i]*ts[i] + off + scale*float64(lane[s])
				}
			} else {
				lane := ix.laneU32[j]
				for i, s := range segs {
					acc[i] = acc[i]*ts[i] + off + scale*float64(lane[s])
				}
			}
		}
	}
	for i, id := range ids {
		cf[id] = acc[i]
	}
}

// batchExtremumSweep processes ranges in ascending Lo order: the first
// overlapping segment advances monotonically with Lo, and the last one is
// found by galloping right from there (ranges are typically narrow, so the
// gallop is near-constant).
func (ix *Index1D) batchExtremumSweep(ranges []Range, out []BatchResult, presorted bool) {
	n := len(ranges)
	order := make([]endpoint, n)
	for i, r := range ranges {
		order[i] = endpoint{x: r.Lo, id: int32(i)}
	}
	if !presorted {
		sort.Slice(order, func(a, b int) bool { return order[a].x < order[b].x })
	}
	h := len(ix.segLo)
	a := 0
	for _, e := range order {
		id := e.id
		lq, uq := ranges[id].Lo, ranges[id].Hi
		if uq < lq || uq < ix.keyLo || lq > ix.keyHi {
			continue // Found stays false
		}
		a = ix.advanceHiGE(a, lq)
		if a >= h || ix.segLo[a] > uq {
			continue
		}
		b := ix.advanceLoLE(a, uq)
		v := ix.maxOverSegs(a, b, lq, uq)
		if ix.neg {
			v = -v
		}
		out[id] = BatchResult{Value: v, Found: true}
	}
}
