package core

import "sort"

// Batched queries: the serving layer answers many ranges per request, and
// answering them one by one repeats a binary search over the segment
// boundaries for every endpoint. QueryBatch amortises that work across the
// batch: ranges are processed in ascending order (sorting them first
// unless they already arrive as ascending non-overlapping windows, the
// shape tiled scans and time-bucketed dashboards produce) and the segment
// cursor only moves forward, located by galloping from its previous
// position. Endpoints that land near their predecessor — the
// common case in a sorted batch — cost O(1) instead of O(log h), and the
// cursor touches the segment array sequentially, which is far kinder to
// the cache than q independent binary searches.
//
// Sorting a random batch costs about as much as it saves when the segment
// array is cache-resident (PolyFit compresses aggressively — measured on
// this hardware, sort-then-sweep still loses at h ≈ 15k), so the paths are
// gated: a pre-sorted batch rides the cursor whenever the segment array is
// big enough for binary searches to wander (≥ minSweepSegments, measured
// 2.6× faster at h ≈ 15k), while an unsorted batch is only worth sorting
// when the segment array dwarfs the batch so badly that independent
// binary searches thrash the cache; otherwise ranges are evaluated
// directly, which is what the serving layer's round-trip amortisation
// already made cheap.

// minSweepSegments gates the sweep for pre-sorted batches: below this the
// per-query binary searches are L1-resident and beat the sweep's setup.
const minSweepSegments = 512

// sweepAdvantage gates sort-then-sweep for unsorted batches: the segment
// array must outnumber batch endpoints by this factor before paying the
// sort beats independent cache-thrashing binary searches.
const sweepAdvantage = 64

// Range is one query interval of a batched request. COUNT/SUM indexes use
// the paper's half-open (Lo, Hi] semantics, MIN/MAX the closed [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// BatchResult is the answer to one Range of a batch. Found mirrors the
// single-query API: always true for COUNT/SUM, false for a MIN/MAX range
// containing no records.
type BatchResult struct {
	Value float64
	Found bool
}

// QueryBatch answers every range of the batch, equivalent to calling
// RangeSum (COUNT/SUM) or RangeExtremum (MIN/MAX) per range but with the
// segment location amortised across the batch whenever that is a win.
// Results are returned in input order.
func (ix *Index1D) QueryBatch(ranges []Range) ([]BatchResult, error) {
	out := make([]BatchResult, len(ranges))
	switch ix.agg {
	case Count, Sum:
		h := len(ix.segLo)
		sorted := h >= minSweepSegments && endpointsAscending(ranges)
		if sorted || h >= sweepAdvantage*2*len(ranges) {
			ix.batchSumSweep(ranges, out, sorted)
		} else {
			ix.batchSumDirect(ranges, out)
		}
	case Min, Max:
		h := len(ix.segLo)
		sorted := h >= minSweepSegments && losAscending(ranges)
		if sorted || h >= sweepAdvantage*len(ranges) {
			ix.batchExtremumSweep(ranges, out, sorted)
		} else {
			ix.batchExtremumDirect(ranges, out)
		}
	default:
		return nil, ErrWrongAgg
	}
	return out, nil
}

// endpointsAscending reports whether the interleaved endpoint sequence
// Lo0 ≤ Hi0 ≤ Lo1 ≤ Hi1 ≤ … is already sorted (non-overlapping ascending
// windows), letting the sweep skip its sort.
func endpointsAscending(ranges []Range) bool {
	prev := 0.0
	for i, r := range ranges {
		if r.Hi < r.Lo || (i > 0 && r.Lo < prev) {
			return false
		}
		prev = r.Hi
	}
	return true
}

// losAscending reports whether ranges already ascend by Lo.
func losAscending(ranges []Range) bool {
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo < ranges[i-1].Lo {
			return false
		}
	}
	return true
}

func (ix *Index1D) batchSumDirect(ranges []Range, out []BatchResult) {
	for i, r := range ranges {
		if r.Hi < r.Lo {
			out[i] = BatchResult{Value: 0, Found: true}
			continue
		}
		out[i] = BatchResult{Value: ix.CF(r.Hi) - ix.CF(r.Lo), Found: true}
	}
}

func (ix *Index1D) batchExtremumDirect(ranges []Range, out []BatchResult) {
	for i, r := range ranges {
		v, ok := ix.maxInternal(r.Lo, r.Hi)
		if !ok {
			continue // Found stays false
		}
		if ix.neg {
			v = -v
		}
		out[i] = BatchResult{Value: v, Found: true}
	}
}

// farJumpStep bounds how far the sweep cursors gallop before handing the
// re-seek to the learned root: a short hop stays in the gallop's cache-warm
// window, a far jump resolves in O(1) through the root instead of finishing
// the gallop's binary phase.
const farJumpStep = 32

// advanceLoLE returns the last index j ≥ cur with segLo[j] ≤ x, by
// galloping right from cur; far jumps resolve through the learned root.
// Requires segLo[cur] ≤ x.
func (ix *Index1D) advanceLoLE(cur int, x float64) int {
	segLo := ix.segLo
	h := len(segLo)
	if cur+1 >= h || segLo[cur+1] > x {
		return cur
	}
	step := 1
	for cur+step < h && segLo[cur+step] <= x {
		if step >= farJumpStep {
			return ix.locateLE(x)
		}
		step <<= 1
	}
	winLo, winHi := cur+step>>1, cur+step
	if winHi > h {
		winHi = h
	}
	return winLo + sort.Search(winHi-winLo, func(j int) bool { return segLo[winLo+j] > x }) - 1
}

// advanceHiGE returns the first index j ≥ cur with segHi[j] ≥ x, by
// galloping right from cur (len(segHi) if none); far jumps resolve through
// the learned root.
func (ix *Index1D) advanceHiGE(cur int, x float64) int {
	segHi := ix.segHi
	h := len(segHi)
	if cur >= h || segHi[cur] >= x {
		return cur
	}
	step := 1
	for cur+step < h && segHi[cur+step] < x {
		if step >= farJumpStep {
			return ix.firstHiGE(x)
		}
		step <<= 1
	}
	winLo, winHi := cur+step>>1, cur+step+1
	if winHi > h {
		winHi = h
	}
	return winLo + sort.Search(winHi-winLo, func(j int) bool { return segHi[winLo+j] >= x })
}

// endpoint pairs one batch endpoint with its slot in the evaluation array.
type endpoint struct {
	x  float64
	id int32
}

// batchSumSweep evaluates CF at all 2q endpoints in ascending order with a
// forward-only segment cursor, then differences per range.
func (ix *Index1D) batchSumSweep(ranges []Range, out []BatchResult, presorted bool) {
	n := len(ranges)
	eps := make([]endpoint, 2*n)
	for i, r := range ranges {
		eps[2*i] = endpoint{x: r.Lo, id: int32(2 * i)}
		eps[2*i+1] = endpoint{x: r.Hi, id: int32(2*i + 1)}
	}
	if !presorted {
		sort.Slice(eps, func(a, b int) bool { return eps[a].x < eps[b].x })
	}
	cf := make([]float64, 2*n)
	seg := 0
	for _, e := range eps {
		x := e.x
		if x < ix.keyLo {
			cf[e.id] = 0
			continue
		}
		seg = ix.advanceLoLE(seg, x)
		if x > ix.segHi[seg] {
			x = ix.segHi[seg] // CF is constant across gaps and past the domain
		}
		cf[e.id] = ix.polys[seg].Eval(ix.frames[seg].Normalize(x))
	}
	for i, r := range ranges {
		if r.Hi < r.Lo {
			out[i] = BatchResult{Value: 0, Found: true}
			continue
		}
		out[i] = BatchResult{Value: cf[2*i+1] - cf[2*i], Found: true}
	}
}

// batchExtremumSweep processes ranges in ascending Lo order: the first
// overlapping segment advances monotonically with Lo, and the last one is
// found by galloping right from there (ranges are typically narrow, so the
// gallop is near-constant).
func (ix *Index1D) batchExtremumSweep(ranges []Range, out []BatchResult, presorted bool) {
	n := len(ranges)
	order := make([]endpoint, n)
	for i, r := range ranges {
		order[i] = endpoint{x: r.Lo, id: int32(i)}
	}
	if !presorted {
		sort.Slice(order, func(a, b int) bool { return order[a].x < order[b].x })
	}
	h := len(ix.segLo)
	a := 0
	for _, e := range order {
		id := e.id
		lq, uq := ranges[id].Lo, ranges[id].Hi
		if uq < lq || uq < ix.keyLo || lq > ix.keyHi {
			continue // Found stays false
		}
		a = ix.advanceHiGE(a, lq)
		if a >= h || ix.segLo[a] > uq {
			continue
		}
		b := ix.advanceLoLE(a, uq)
		v := ix.maxOverSegs(a, b, lq, uq)
		if ix.neg {
			v = -v
		}
		out[id] = BatchResult{Value: v, Found: true}
	}
}
