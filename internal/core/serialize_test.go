package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestRoundTrip1DSum(t *testing.T) {
	keys, measures := genDataset(2000, 31)
	orig, err := BuildSum(keys, measures, Options{Delta: 400})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Index1D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if loaded.Aggregate() != Sum || loaded.NumSegments() != orig.NumSegments() ||
		loaded.Len() != orig.Len() || loaded.Delta() != orig.Delta() {
		t.Fatal("metadata mismatch after round-trip")
	}
	rng := rand.New(rand.NewSource(32))
	for q := 0; q < 300; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		a, _ := orig.RangeSum(l, u)
		b, err := loaded.RangeSum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("answers diverge after round-trip: %g vs %g", a, b)
		}
	}
	// Relative queries on a loaded index have no fallback.
	if _, _, err := loaded.RangeSumRel(keys[0], keys[1], 1e-12); err != ErrNoFallback {
		t.Errorf("loaded index should report ErrNoFallback, got %v", err)
	}
}

func TestRoundTrip1DMax(t *testing.T) {
	keys, measures := genDataset(1500, 33)
	orig, err := BuildMax(keys, measures, Options{Delta: 40})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := orig.MarshalBinary()
	var loaded Index1D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	for q := 0; q < 200; q++ {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		a, okA, _ := orig.RangeExtremum(l, u)
		b, okB, err := loaded.RangeExtremum(l, u)
		if err != nil {
			t.Fatal(err)
		}
		if okA != okB || (okA && a != b) {
			t.Fatalf("MAX answers diverge after round-trip: (%g,%v) vs (%g,%v)", a, okA, b, okB)
		}
	}
}

func TestRoundTrip1DMin(t *testing.T) {
	keys, measures := genDataset(800, 35)
	orig, err := BuildMin(keys, measures, Options{Delta: 40})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := orig.MarshalBinary()
	var loaded Index1D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if loaded.Aggregate() != Min {
		t.Fatalf("aggregate lost: %v", loaded.Aggregate())
	}
	v1, ok1, _ := orig.RangeExtremum(keys[10], keys[700])
	v2, ok2, _ := loaded.RangeExtremum(keys[10], keys[700])
	if ok1 != ok2 || v1 != v2 {
		t.Fatalf("MIN diverges: (%g,%v) vs (%g,%v)", v1, ok1, v2, ok2)
	}
}

func TestRoundTrip2D(t *testing.T) {
	xs, ys := gen2D(3000, 37)
	orig, err := BuildCount2D(xs, ys, Options2D{Delta: 40})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Index2D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if loaded.NumLeaves() != orig.NumLeaves() || loaded.Len() != orig.Len() {
		t.Fatalf("metadata mismatch: %d/%d leaves, %d/%d len",
			loaded.NumLeaves(), orig.NumLeaves(), loaded.Len(), orig.Len())
	}
	rng := rand.New(rand.NewSource(38))
	for q := 0; q < 200; q++ {
		x1 := -180 + rng.Float64()*360
		x2 := -180 + rng.Float64()*360
		y1 := -90 + rng.Float64()*180
		y2 := -90 + rng.Float64()*180
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		if a, b := orig.RangeCount(x1, x2, y1, y2), loaded.RangeCount(x1, x2, y1, y2); a != b {
			t.Fatalf("2D answers diverge: %g vs %g", a, b)
		}
	}
	if _, _, err := loaded.RangeCountRel(0, 1, 0, 1, 1e-12); err != ErrNoFallback {
		t.Errorf("loaded 2D index should report ErrNoFallback, got %v", err)
	}
}

func TestUnmarshalCorrupted(t *testing.T) {
	keys, _ := genDataset(300, 39)
	ix, _ := BuildCount(keys, Options{Delta: 20})
	blob, _ := ix.MarshalBinary()
	var target Index1D
	if err := target.UnmarshalBinary(nil); err == nil {
		t.Error("nil blob should error")
	}
	if err := target.UnmarshalBinary(blob[:8]); err == nil {
		t.Error("truncated blob should error")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if err := target.UnmarshalBinary(bad); err == nil {
		t.Error("wrong magic should error")
	}
	var target2 Index2D
	if err := target2.UnmarshalBinary(blob); err == nil {
		t.Error("1D blob must not parse as 2D index")
	}
}

func TestSerializedSizeTracksSegments(t *testing.T) {
	keys, _ := genDataset(4000, 41)
	small, _ := BuildCount(keys, Options{Delta: 500, NoFallback: true})
	big, _ := BuildCount(keys, Options{Delta: 2, NoFallback: true})
	sb, _ := small.MarshalBinary()
	bb, _ := big.MarshalBinary()
	if len(sb) >= len(bb) {
		t.Errorf("larger δ should serialise smaller: %d vs %d bytes", len(sb), len(bb))
	}
	if math.Abs(float64(len(sb))) > float64(8*len(keys)) {
		t.Errorf("serialised index bigger than raw keys")
	}
}
