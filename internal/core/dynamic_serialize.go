package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/artree"
	"repro/internal/kca"
	"repro/internal/segment"
)

// Dynamic-index serialization: the versioned on-disk format that makes
// Dynamic1D round-trip. Unlike the static Index1D encoding — which keeps
// only the O(h) polynomial structure — a dynamic index must come back
// *dynamic*: able to accept inserts, detect duplicates, merge-rebuild, and
// (when built with fallbacks) certify relative-error answers. All of that
// needs the raw data, so the format carries the full state:
//
//	magic "POLD" | version 3 | agg | flags | options (solver backend,
//	coefficient-encoding mode, degree, parallelism, δ, rebuild fraction;
//	exp-search and fallback settings in flags) | raw keys (and measures,
//	except COUNT) | the sorted delta buffer (keys and measures) | the
//	fitted base index as a nested Index1D blob
//
// v3 adds the coefficient-encoding mode byte so merge-rebuilds after a
// restore keep honouring a forced encoding; v2 blobs (no mode byte, nested
// POL1 v1 base) still load, defaulting the mode to auto.
//
// Restoring never re-fits: the base segments load straight from the nested
// blob, and only the O(n) exact fallbacks are reconstructed (when the
// options ask for them), so recovery cost is a linear scan, not a build.
// COUNT indexes skip the measures array — the build and the fallback both
// ignore it — which halves the blob for the most common aggregate.

const (
	magicDyn     = uint32(0x504F4C44) // "POLD"
	dynFormatVer = uint16(3)

	dynFlagNoFallback  = 1 << 0
	dynFlagHasMeasures = 1 << 1
	dynFlagNoExpSearch = 1 << 2
)

// MarshalBinary serialises the complete dynamic state — options (fallback
// setting included), raw data, delta buffer, and the fitted base — in the
// versioned POLD format, so RestoreDynamic can reconstruct an equivalent
// index without re-fitting. It reads one immutable snapshot and takes no
// lock: concurrent writers are never blocked and the buffer survives.
//
// The blob is not compatible with Index1D.UnmarshalBinary (the static
// format has no room for the buffer or the raw data); Index1D reports a
// descriptive error when handed one.
func (d *Dynamic1D) MarshalBinary() ([]byte, error) {
	st := d.state.Load()
	baseBlob, err := st.base.MarshalBinary()
	if err != nil {
		return nil, err
	}
	flags := uint8(0)
	if d.opt.NoFallback {
		flags |= dynFlagNoFallback
	}
	hasMeasures := d.agg != Count
	if hasMeasures {
		flags |= dynFlagHasMeasures
	}
	if d.opt.NoExpSearch {
		flags |= dynFlagNoExpSearch
	}
	var buf bytes.Buffer
	buf.Grow(64 + 8*(len(st.keys)+len(st.measures)+2*len(st.bufKeys)) + len(baseBlob))
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(magicDyn)
	w(dynFormatVer)
	w(uint8(d.agg))
	w(flags)
	w(uint8(d.opt.Backend))
	w(uint8(d.opt.Encoding))
	w(uint32(d.opt.Degree))
	w(uint32(max(d.opt.Parallelism, 0)))
	w(d.opt.Delta)
	w(d.RebuildFraction)
	w(uint64(len(st.keys)))
	writeFloatSlice(&buf, st.keys)
	if hasMeasures {
		writeFloatSlice(&buf, st.measures)
	}
	w(uint64(len(st.bufKeys)))
	writeFloatSlice(&buf, st.bufKeys)
	writeFloatSlice(&buf, st.bufVals)
	w(uint64(len(baseBlob)))
	buf.Write(baseBlob)
	return buf.Bytes(), nil
}

// RestoreDynamic reconstructs a Dynamic1D from a blob produced by
// Dynamic1D.MarshalBinary. The restored index is fully operational: the
// delta buffer, options (including the exact-fallback setting, rebuilt from
// the raw data when enabled), and rebuild threshold all survive, so every
// query — absolute, relative, batched — answers exactly as it did on the
// index that was marshalled. Corrupt or truncated blobs are rejected with
// an error wrapping ErrBadFormat; RestoreDynamic never panics on garbage.
func RestoreDynamic(data []byte) (*Dynamic1D, error) {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	var ver uint16
	if err := rd(&m); err != nil || m != magicDyn {
		if m == magic1D || m == magic2D {
			return nil, fmt.Errorf("%w: static index blob (use Index1D/Index2D UnmarshalBinary)", ErrBadFormat)
		}
		return nil, fmt.Errorf("%w: magic", ErrBadFormat)
	}
	if err := rd(&ver); err != nil || (ver != 2 && ver != dynFormatVer) {
		return nil, fmt.Errorf("%w: dynamic format version", ErrBadFormat)
	}
	var aggB, flags, backend, encMode uint8
	var degree, par uint32
	var delta, rebuildFrac float64
	var n uint64
	if err := firstErr(rd(&aggB), rd(&flags), rd(&backend)); err != nil {
		return nil, fmt.Errorf("%w: dynamic header", ErrBadFormat)
	}
	if ver >= 3 {
		if err := rd(&encMode); err != nil {
			return nil, fmt.Errorf("%w: dynamic header", ErrBadFormat)
		}
		if enc := Encoding(encMode); enc != EncAuto && !enc.valid() {
			return nil, fmt.Errorf("%w: encoding mode %d", ErrBadFormat, encMode)
		}
	}
	if err := firstErr(rd(&degree), rd(&par),
		rd(&delta), rd(&rebuildFrac), rd(&n)); err != nil {
		return nil, fmt.Errorf("%w: dynamic header", ErrBadFormat)
	}
	if segment.Backend(backend) != segment.Exchange && segment.Backend(backend) != segment.DualLP {
		return nil, fmt.Errorf("%w: solver backend %d", ErrBadFormat, backend)
	}
	agg := Agg(aggB)
	if agg < Count || agg > Max {
		return nil, fmt.Errorf("%w: aggregate %d", ErrBadFormat, aggB)
	}
	hasMeasures := flags&dynFlagHasMeasures != 0
	if hasMeasures != (agg != Count) {
		return nil, fmt.Errorf("%w: measures flag inconsistent with aggregate", ErrBadFormat)
	}
	if degree < 1 || degree > 64 {
		return nil, fmt.Errorf("%w: degree %d", ErrBadFormat, degree)
	}
	if !(delta > 0) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("%w: delta %g", ErrBadFormat, delta)
	}
	if !(rebuildFrac > 0) || math.IsInf(rebuildFrac, 0) {
		return nil, fmt.Errorf("%w: rebuild fraction %g", ErrBadFormat, rebuildFrac)
	}
	// A record is at least 8 bytes; reject counts the blob cannot hold
	// before allocating (mirrors the Index1D segment-count guard).
	if n == 0 || n > uint64(len(data))/8+1 {
		return nil, fmt.Errorf("%w: %d records", ErrBadFormat, n)
	}
	keys, err := readFloats(r, int(n), "keys")
	if err != nil {
		return nil, err
	}
	if err := checkSortedFinite(keys, "keys"); err != nil {
		return nil, err
	}
	var measures []float64
	if hasMeasures {
		if measures, err = readFloats(r, int(n), "measures"); err != nil {
			return nil, err
		}
		for _, v := range measures {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("%w: NaN measure", ErrBadFormat)
			}
		}
	} else {
		measures = make([]float64, n)
	}
	var b uint64
	if err := rd(&b); err != nil {
		return nil, fmt.Errorf("%w: buffer length", ErrBadFormat)
	}
	if b > uint64(len(data))/8+1 {
		return nil, fmt.Errorf("%w: %d buffered records", ErrBadFormat, b)
	}
	bufKeys, err := readFloats(r, int(b), "buffer keys")
	if err != nil {
		return nil, err
	}
	if err := checkSortedFinite(bufKeys, "buffer keys"); err != nil {
		return nil, err
	}
	bufVals, err := readFloats(r, int(b), "buffer measures")
	if err != nil {
		return nil, err
	}
	for _, v := range bufVals {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("%w: NaN buffer measure", ErrBadFormat)
		}
	}
	// The buffer must stay disjoint from the base keys or the first
	// merge-rebuild would violate the distinct-key invariant.
	for _, k := range bufKeys {
		if i := sort.SearchFloat64s(keys, k); i < len(keys) && keys[i] == k {
			return nil, fmt.Errorf("%w: buffered key %g duplicates a base key", ErrBadFormat, k)
		}
	}
	var baseLen uint64
	if err := rd(&baseLen); err != nil {
		return nil, fmt.Errorf("%w: base blob length", ErrBadFormat)
	}
	if baseLen == 0 || baseLen > uint64(r.Len()) {
		return nil, fmt.Errorf("%w: base blob length %d with %d bytes left", ErrBadFormat, baseLen, r.Len())
	}
	baseBlob := make([]byte, baseLen)
	if _, err := r.Read(baseBlob); err != nil {
		return nil, fmt.Errorf("%w: base blob", ErrBadFormat)
	}
	base := &Index1D{}
	if err := base.UnmarshalBinary(baseBlob); err != nil {
		return nil, err
	}
	if base.agg != agg {
		return nil, fmt.Errorf("%w: base aggregate %v, dynamic header %v", ErrBadFormat, base.agg, agg)
	}
	if base.n != int(n) || base.keyLo != keys[0] || base.keyHi != keys[n-1] {
		return nil, fmt.Errorf("%w: base index disagrees with raw data", ErrBadFormat)
	}
	opt := Options{
		Degree: int(degree), Delta: delta,
		Backend:     segment.Backend(backend),
		Encoding:    Encoding(encMode),
		NoExpSearch: flags&dynFlagNoExpSearch != 0,
		NoFallback:  flags&dynFlagNoFallback != 0, Parallelism: int(par),
	}
	if !opt.NoFallback {
		if err := attachFallback(base, keys, measures); err != nil {
			return nil, err
		}
	}
	d := &Dynamic1D{agg: agg, opt: opt, RebuildFraction: rebuildFrac}
	st := &dynState{
		base: base, keys: keys, measures: measures,
		bufKeys: bufKeys, bufVals: bufVals,
	}
	if agg == Count || agg == Sum {
		st.bufPre = prefixSums(bufVals)
	}
	d.state.Store(st)
	//lint:ignore lockguard d is still private to this restore function; no other goroutine can hold a reference yet
	d.rebuilds = 1
	return d, nil
}

// writeFloatSlice appends vals in little-endian without the per-element
// interface boxing of binary.Write — the arrays dominate snapshot cost.
func writeFloatSlice(buf *bytes.Buffer, vals []float64) {
	var scratch [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf.Write(scratch[:])
	}
}

func readFloats(r *bytes.Reader, n int, what string) ([]float64, error) {
	raw := make([]byte, 8*n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrBadFormat, what)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

func checkSortedFinite(keys []float64, what string) error {
	for i, k := range keys {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return fmt.Errorf("%w: non-finite %s", ErrBadFormat, what)
		}
		if i > 0 && k <= keys[i-1] {
			return fmt.Errorf("%w: %s not strictly increasing", ErrBadFormat, what)
		}
	}
	return nil
}

func prefixSums(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	pre := make([]float64, len(vals))
	run := 0.0
	for i, v := range vals {
		run += v
		pre[i] = run
	}
	return pre
}

// attachFallback reconstructs the exact structures a fallback-enabled build
// would have produced, mirroring buildCumulative/buildExtremum: COUNT uses
// unit measures, MIN negates (the index stores MIN as MAX over negated
// measures and un-negates on the way out).
func attachFallback(ix *Index1D, keys, measures []float64) error {
	switch ix.agg {
	case Count:
		arr, err := kca.NewCount(keys)
		if err != nil {
			return err
		}
		ix.exactCF = arr
	case Sum:
		arr, err := kca.New(keys, measures)
		if err != nil {
			return err
		}
		ix.exactCF = arr
	case Max:
		tree, err := artree.NewMaxTree(keys, measures, artree.Max)
		if err != nil {
			return err
		}
		ix.exactExt = tree
	case Min:
		negated := make([]float64, len(measures))
		for i, m := range measures {
			negated[i] = -m
		}
		tree, err := artree.NewMaxTree(keys, negated, artree.Max)
		if err != nil {
			return err
		}
		ix.exactExt = tree
	}
	return nil
}
