package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Sharding: a Sharded1D (and its insertable sibling ShardedDynamic1D)
// range-partitions the key space into K contiguous shards, each backed by an
// ordinary PolyFit index over its own chunk of the data. Queries scatter to
// the shards their range overlaps — located in O(log K) through the routing
// bounds — run the per-shard queries in parallel when enough shards are
// touched, and gather the partial aggregates: SUM/COUNT partials add,
// MIN/MAX partials combine. Both variants share one scatter-gather engine
// (shardSet); only construction, inserts, and the exact-fallback paths are
// type-specific.
//
// # Error composition
//
// Each shard is an independent PolyFit index built with the same δ, so each
// touched shard contributes its own error:
//
//   - COUNT/SUM: a shard's contribution is CF(uq) − CF(lq) over its own
//     keys, each evaluation within δ (Lemma 2), so the per-shard error is
//     ≤ 2δ and the total over m touched shards is ≤ 2δ·m. The composed
//     bound is reported alongside every answer.
//   - MIN/MAX: the gathered answer is the max (min) of per-shard answers
//     each within δ of its shard's true extremum (Lemma 4); the combination
//     is therefore within δ of the true extremum — the bound does NOT
//     accumulate with the shard count.
//
// # Why shard
//
// A single Dynamic1D serialises all inserts on one lock and merge-rebuilds
// over the whole dataset. With K shards, inserts route to the owning shard
// (shard-local locking), a hot shard's merge-rebuild re-fits only its own
// chunk, and queries to the other K−1 shards proceed completely
// undisturbed — queries are lock-free snapshot reads within each shard.

// maxShards caps the shard count (requested counts are clamped): routing is
// a binary search over the bounds, but per-query scatter cost grows with
// the touched-shard count, and thousands of shards stop paying for
// themselves long before this.
const maxShards = 1 << 12

// gatherSerialMax is the touched-shard count up to which scatter-gather
// runs the per-shard queries serially: a single-shard point query costs
// tens of nanoseconds, so fanning out to goroutines only pays once several
// shards are involved.
const gatherSerialMax = 3

// shardQuerier is the per-shard query surface the scatter-gather engine
// needs; both *Index1D and *Dynamic1D satisfy it.
type shardQuerier interface {
	RangeSum(lq, uq float64) (float64, error)
	RangeExtremum(lq, uq float64) (float64, bool, error)
	QueryBatch(ranges []Range) ([]BatchResult, error)
}

// shardSet is the scatter-gather engine shared by Sharded1D and
// ShardedDynamic1D: the routing bounds plus one shardQuerier per shard.
// Its exported query methods are promoted onto both sharded types.
type shardSet struct {
	agg   Agg
	delta float64
	// bounds are the K−1 routing boundaries: shard i owns keys k with
	// bounds[i−1] ≤ k < bounds[i] (bounds[−1] = −∞, bounds[K−1] = +∞).
	bounds []float64
	qs     []shardQuerier
}

// shardOf returns the index of the shard owning key k: the number of
// routing bounds ≤ k.
func shardOf(bounds []float64, k float64) int {
	return sort.Search(len(bounds), func(j int) bool { return bounds[j] > k })
}

// shardSpan returns the inclusive shard window [a, b] a query range
// overlaps. NaN endpoints route arbitrarily (every bound comparison is
// false), which can invert the window — it is normalised so callers always
// see a well-formed a ≤ b; the per-shard queries handle non-finite
// endpoints themselves (garbage in, garbage out, never a panic).
func shardSpan(bounds []float64, lq, uq float64) (a, b int) {
	a, b = shardOf(bounds, lq), shardOf(bounds, uq)
	if b < a {
		a, b = b, a
	}
	return a, b
}

// gatherCtx runs f(i) for every shard index in [a, b] — serially when the
// window is small or the process has a single CPU (goroutine fan-out is
// pure overhead then), on one goroutine per shard otherwise. f must write
// only to its own slot of whatever output it fills.
//
// A cancelled or expired ctx makes the remaining shards abandon their work:
// the serial path stops between shards, the parallel path skips f in every
// worker that has not started yet (a shard query already running finishes —
// individual per-shard queries are sub-microsecond, so there is nothing
// worth interrupting inside them). Returns ctx.Err() if the gather was cut
// short; the partial output must then be discarded.
func gatherCtx(ctx context.Context, a, b int, f func(i int)) error {
	m := b - a + 1
	if m <= gatherSerialMax || runtime.GOMAXPROCS(0) == 1 {
		for i := a; i <= b; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f(i)
		}
		return nil
	}
	var wg sync.WaitGroup
	wg.Add(m)
	for i := a; i <= b; i++ {
		go func(i int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			f(i)
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}

// sumBound is the composed absolute-error bound for a COUNT/SUM answer
// gathered from m shards built with δ: 2δ per touched shard (Lemma 2).
func sumBound(delta float64, m int) float64 { return 2 * delta * float64(m) }

// RangeSum answers an approximate COUNT/SUM over (lq, uq] by summing the
// per-shard estimates of every overlapping shard (in shard order, so the
// answer is deterministic). The returned bound is the composed absolute
// error guarantee 2δ·m for the m touched shards.
func (s *shardSet) RangeSum(lq, uq float64) (val, bound float64, err error) {
	return s.RangeSumCtx(context.Background(), lq, uq)
}

// RangeSumCtx is RangeSum honoring cancellation: an expired ctx stops the
// scatter-gather between shards and reports ctx.Err().
func (s *shardSet) RangeSumCtx(ctx context.Context, lq, uq float64) (val, bound float64, err error) {
	if s.agg != Sum && s.agg != Count {
		return 0, 0, ErrWrongAgg
	}
	if uq < lq {
		return 0, 0, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	a, b := shardSpan(s.bounds, lq, uq)
	if a == b {
		// Single-shard ranges (the common point/interior shape) skip the
		// gather machinery entirely — no per-query allocation.
		v, err := s.qs[a].RangeSum(lq, uq)
		return v, sumBound(s.delta, 1), err
	}
	vals := make([]float64, b-a+1)
	if err := gatherCtx(ctx, a, b, func(i int) {
		vals[i-a], _ = s.qs[i].RangeSum(lq, uq)
	}); err != nil {
		return 0, 0, err
	}
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total, sumBound(s.delta, b-a+1), nil
}

// RangeExtremum answers an approximate MIN/MAX over [lq, uq] by combining
// the per-shard answers. The bound is δ — extremum error does not compose
// with the shard count (each shard answer is within δ of its shard's true
// extremum, and max/min of such values stays within δ of the true answer).
func (s *shardSet) RangeExtremum(lq, uq float64) (val, bound float64, ok bool, err error) {
	return s.RangeExtremumCtx(context.Background(), lq, uq)
}

// RangeExtremumCtx is RangeExtremum honoring cancellation, as
// RangeSumCtx.
func (s *shardSet) RangeExtremumCtx(ctx context.Context, lq, uq float64) (val, bound float64, ok bool, err error) {
	if s.agg != Max && s.agg != Min {
		return 0, 0, false, ErrWrongAgg
	}
	if uq < lq {
		return 0, s.delta, false, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, false, err
	}
	a, b := shardSpan(s.bounds, lq, uq)
	if a == b {
		v, got, err := s.qs[a].RangeExtremum(lq, uq)
		return v, s.delta, got, err
	}
	vals := make([]float64, b-a+1)
	oks := make([]bool, b-a+1)
	if err := gatherCtx(ctx, a, b, func(i int) {
		vals[i-a], oks[i-a], _ = s.qs[i].RangeExtremum(lq, uq)
	}); err != nil {
		return 0, 0, false, err
	}
	best, found := 0.0, false
	for i, v := range vals {
		best, found, _ = combineExtrema(s.agg, best, found, v, oks[i])
	}
	return best, s.delta, found, nil
}

// QueryBatch answers many ranges in one call: each range is routed only to
// the shards it overlaps, the per-shard sub-batches run in parallel
// through each shard's amortised batch path, and the partial aggregates
// are merged in shard order. Results are returned in input order.
func (s *shardSet) QueryBatch(ranges []Range) ([]BatchResult, error) {
	return s.QueryBatchCtx(context.Background(), ranges)
}

// QueryBatchCtx is QueryBatch honoring cancellation: per-shard sub-batches
// that have not started when ctx expires are abandoned and ctx.Err() is
// reported.
func (s *shardSet) QueryBatchCtx(ctx context.Context, ranges []Range) ([]BatchResult, error) {
	if s.agg < Count || s.agg > Max {
		return nil, ErrWrongAgg
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(s.qs) == 1 {
		return s.qs[0].QueryBatch(ranges)
	}
	subs, slots := shardBatch(s.bounds, len(s.qs), ranges)
	results, err := gatherBatch(subs, func(i int, sub []Range) ([]BatchResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.qs[i].QueryBatch(sub)
	})
	if err != nil {
		return nil, err
	}
	return mergeBatch(s.agg, ranges, results, slots), nil
}

// relGateSum runs the shared COUNT/SUM relative-error preamble: argument
// checks, the composed estimate and bound, and the Lemma 3 gate against
// the composed bound. pass reports a certified approximate answer;
// otherwise the caller must consult its exact fallbacks over the returned
// shard window.
func (s *shardSet) relGateSum(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, pass, empty bool, a, b int, err error) {
	if s.agg != Sum && s.agg != Count {
		return 0, 0, false, false, 0, 0, ErrWrongAgg
	}
	if epsRel <= 0 {
		return 0, 0, false, false, 0, 0, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	if uq < lq {
		return 0, 0, false, true, 0, 0, nil
	}
	est, bnd, err := s.RangeSumCtx(ctx, lq, uq)
	if err != nil {
		return 0, 0, false, false, 0, 0, err
	}
	a, b = shardSpan(s.bounds, lq, uq)
	return est, bnd, est >= bnd*(1+1/epsRel), false, a, b, nil
}

// relGateExtremum mirrors relGateSum for MIN/MAX (Lemma 5 applied to the
// combined estimate).
func (s *shardSet) relGateExtremum(ctx context.Context, lq, uq, epsRel float64) (val float64, pass, ok, empty bool, a, b int, err error) {
	if s.agg != Max && s.agg != Min {
		return 0, false, false, false, 0, 0, ErrWrongAgg
	}
	if epsRel <= 0 {
		return 0, false, false, false, 0, 0, fmt.Errorf("%w: non-positive relative error %g", ErrInvalidRange, epsRel)
	}
	v, _, got, err := s.RangeExtremumCtx(ctx, lq, uq)
	if err != nil {
		return 0, false, false, false, 0, 0, err
	}
	if got && v >= s.delta*(1+1/epsRel) {
		return v, true, true, false, 0, 0, nil
	}
	if uq < lq {
		return 0, false, false, true, 0, 0, nil
	}
	a, b = shardSpan(s.bounds, lq, uq)
	return v, false, got, false, a, b, nil
}

// shardBatch routes each range of a batch to the shards it overlaps,
// returning one sub-batch per shard plus the output slot of every routed
// range. Ranges with Hi < Lo are not routed anywhere.
func shardBatch(bounds []float64, nShards int, ranges []Range) (subs [][]Range, slots [][]int32) {
	subs = make([][]Range, nShards)
	slots = make([][]int32, nShards)
	for i, r := range ranges {
		if r.Hi < r.Lo {
			continue
		}
		a, b := shardSpan(bounds, r.Lo, r.Hi)
		for j := a; j <= b; j++ {
			subs[j] = append(subs[j], r)
			slots[j] = append(slots[j], int32(i))
		}
	}
	return subs, slots
}

// gatherBatch runs query(i, sub) for every shard with a non-empty
// sub-batch — in parallel when two or more shards are involved — and
// returns the per-shard results.
func gatherBatch(subs [][]Range, query func(i int, sub []Range) ([]BatchResult, error)) ([][]BatchResult, error) {
	results := make([][]BatchResult, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		if len(sub) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sub []Range) {
			defer wg.Done()
			results[i], errs[i] = query(i, sub)
		}(i, sub)
	}
	wg.Wait()
	if err := firstErr(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// mergeBatch folds per-shard batch results into the output in shard order
// (deterministic regardless of gather scheduling).
func mergeBatch(agg Agg, ranges []Range, results [][]BatchResult, slots [][]int32) []BatchResult {
	out := make([]BatchResult, len(ranges))
	if agg == Count || agg == Sum {
		for i := range out {
			out[i] = BatchResult{Value: 0, Found: true}
		}
		for sh, res := range results {
			for k, r := range res {
				out[slots[sh][k]].Value += r.Value
			}
		}
		return out
	}
	for sh, res := range results {
		for k, r := range res {
			id := slots[sh][k]
			v, ok, _ := combineExtrema(agg, out[id].Value, out[id].Found, r.Value, r.Found)
			out[id] = BatchResult{Value: v, Found: ok}
		}
	}
	return out
}

// --- introspection (shared) -------------------------------------------------

// Aggregate returns the aggregate the sharded index was built for.
func (s *shardSet) Aggregate() Agg { return s.agg }

// Delta returns the per-shard build δ.
func (s *shardSet) Delta() float64 { return s.delta }

// NumShards returns K.
func (s *shardSet) NumShards() int { return len(s.qs) }

// Bounds returns a copy of the K−1 routing boundaries.
func (s *shardSet) Bounds() []float64 { return append([]float64(nil), s.bounds...) }

// ShardOf returns the index of the shard that owns key k.
func (s *shardSet) ShardOf(k float64) int { return shardOf(s.bounds, k) }

// ShardsTouched returns the number of shards a range query over [lq, uq]
// scatters to — the m of the composed COUNT/SUM bound 2δ·m. Empty
// (inverted) ranges touch no shard.
func (s *shardSet) ShardsTouched(lq, uq float64) int {
	if uq < lq {
		return 0
	}
	a, b := shardSpan(s.bounds, lq, uq)
	return b - a + 1
}

// --- construction -----------------------------------------------------------

type chunk struct{ keys, measures []float64 }

// shardPlan validates the dataset and splits it into near-equal contiguous
// chunks, returning the routing bounds (the first key of every chunk after
// the first). It also divides opt's fit-parallelism budget across the
// chunks: shard builds already run one goroutine per shard, so keeping the
// per-shard worker count at the full setting would oversubscribe the CPUs
// K-fold (the produced indexes are identical for any worker count, so this
// only affects build latency).
func shardPlan(agg Agg, keys, measures []float64, shards int, opt Options) ([]chunk, []float64, Options, error) {
	if len(keys) == 0 {
		return nil, nil, opt, ErrEmptyDataset
	}
	if agg == Count && measures == nil {
		measures = make([]float64, len(keys))
	}
	if len(keys) != len(measures) {
		return nil, nil, opt, fmt.Errorf("core: %d keys, %d measures", len(keys), len(measures))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, nil, opt, fmt.Errorf("%w (violated at %d)", ErrUnsortedKeys, i)
		}
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(keys) {
		shards = len(keys)
	}
	if shards > maxShards {
		shards = maxShards
	}
	if opt.Parallelism > 1 {
		opt.Parallelism = max(1, opt.Parallelism/shards)
	}
	chunks := make([]chunk, shards)
	bounds := make([]float64, 0, shards-1)
	for i := 0; i < shards; i++ {
		lo, hi := i*len(keys)/shards, (i+1)*len(keys)/shards
		chunks[i] = chunk{keys: keys[lo:hi:hi], measures: measures[lo:hi:hi]}
		if i > 0 {
			bounds = append(bounds, keys[lo])
		}
	}
	return chunks, bounds, opt, nil
}

// queriers adapts a typed shard slice to the engine's interface slice.
func queriers[T shardQuerier](shards []T) []shardQuerier {
	qs := make([]shardQuerier, len(shards))
	for i, sh := range shards {
		qs[i] = sh
	}
	return qs
}

// Sharded1D is a range-partitioned PolyFit index: K static shards over
// disjoint, ordered key ranges, queried scatter-gather.
type Sharded1D struct {
	shardSet
	shards []*Index1D
}

// BuildSharded constructs a sharded index of the given aggregate: keys are
// split into shards contiguous chunks of near-equal count, and one Index1D
// is built per chunk (concurrently). measures may be nil for Count.
// shards is clamped to [1, min(len(keys), 4096)].
func BuildSharded(agg Agg, keys, measures []float64, shards int, opt Options) (*Sharded1D, error) {
	chunks, bounds, opt, err := shardPlan(agg, keys, measures, shards, opt)
	if err != nil {
		return nil, err
	}
	built := make([]*Index1D, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c chunk) {
			defer wg.Done()
			built[i], errs[i] = Build(agg, c.keys, c.measures, opt)
		}(i, c)
	}
	wg.Wait()
	if err := firstErr(errs...); err != nil {
		return nil, err
	}
	return &Sharded1D{
		shardSet: shardSet{agg: agg, delta: built[0].delta, bounds: bounds, qs: queriers(built)},
		shards:   built,
	}, nil
}

// RangeSumRel answers a COUNT/SUM query with the relative guarantee εrel.
// The Lemma 3 gate runs against the composed bound B = 2δ·m: the
// approximate answer A certifies |A − R|/R ≤ εrel when A ≥ B(1 + 1/εrel);
// otherwise the per-shard exact fallbacks answer (and every touched shard
// must carry one).
// The returned bound is the composed 2δ·m for certified approximate
// answers and 0 when the exact path answered.
func (s *Sharded1D) RangeSumRel(lq, uq, epsRel float64) (val, bound float64, usedExact bool, err error) {
	return s.RangeSumRelCtx(context.Background(), lq, uq, epsRel)
}

// RangeSumRelCtx is RangeSumRel honoring cancellation across both the
// approximate gather and the per-shard exact fallback sweep.
func (s *Sharded1D) RangeSumRelCtx(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, usedExact bool, err error) {
	est, bnd, pass, empty, a, b, err := s.relGateSum(ctx, lq, uq, epsRel)
	if err != nil || empty {
		return 0, 0, false, err
	}
	if pass {
		return est, bnd, false, nil
	}
	exact := 0.0
	for i := a; i <= b; i++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, false, err
		}
		if s.shards[i].exactCF == nil {
			return 0, 0, false, ErrNoFallback
		}
		exact += s.shards[i].exactCF.RangeSum(lq, uq)
	}
	return exact, 0, true, nil
}

// RangeExtremumRel answers a MIN/MAX query with the relative guarantee
// εrel (Lemma 5 applied to the combined estimate); on gate failure the
// per-shard exact aggregate trees answer.
// The returned bound is δ for certified approximate answers and 0 when
// the exact path answered.
func (s *Sharded1D) RangeExtremumRel(lq, uq, epsRel float64) (val, bound float64, usedExact, ok bool, err error) {
	return s.RangeExtremumRelCtx(context.Background(), lq, uq, epsRel)
}

// RangeExtremumRelCtx is RangeExtremumRel honoring cancellation, as
// RangeSumRelCtx.
func (s *Sharded1D) RangeExtremumRelCtx(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, usedExact, ok bool, err error) {
	est, pass, got, empty, a, b, err := s.relGateExtremum(ctx, lq, uq, epsRel)
	if err != nil || empty {
		return 0, 0, false, false, err
	}
	if pass {
		return est, s.delta, false, got, nil
	}
	best, found := 0.0, false
	for i := a; i <= b; i++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, false, false, err
		}
		sh := s.shards[i]
		if sh.exactExt == nil {
			return 0, 0, false, false, ErrNoFallback
		}
		ev, eok := sh.exactExt.Query(lq, uq)
		if sh.neg {
			ev = -ev
		}
		best, found, _ = combineExtrema(s.agg, best, found, ev, eok)
	}
	return best, 0, true, found, nil
}

// Shard returns the i-th shard's index (immutable; for stats and tests).
func (s *Sharded1D) Shard(i int) *Index1D { return s.shards[i] }

// Len returns the total number of indexed records across all shards.
func (s *Sharded1D) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// NumSegments returns the total fitted-segment count across all shards.
func (s *Sharded1D) NumSegments() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumSegments()
	}
	return n
}

// SizeBytes reports the summed PolyFit footprint of all shards plus the
// routing bounds.
func (s *Sharded1D) SizeBytes() int {
	n := 8 * len(s.bounds)
	for _, sh := range s.shards {
		n += sh.SizeBytes()
	}
	return n
}

// RootSizeBytes reports the summed learned-root footprint of all shards
// (included in SizeBytes, as for Index1D).
func (s *Sharded1D) RootSizeBytes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.RootSizeBytes()
	}
	return n
}

// FallbackSizeBytes reports the summed exact-fallback footprint.
func (s *Sharded1D) FallbackSizeBytes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.FallbackSizeBytes()
	}
	return n
}

// KeyRange returns the smallest and largest indexed key across shards.
func (s *Sharded1D) KeyRange() (lo, hi float64) {
	lo, _ = s.shards[0].KeyRange()
	_, hi = s.shards[len(s.shards)-1].KeyRange()
	return lo, hi
}

// --- dynamic ---------------------------------------------------------------

// ShardedDynamic1D is the insertable sharded index: K Dynamic1D shards over
// disjoint key ranges. Inserts route to the owning shard and take only that
// shard's lock; a merge-rebuild re-fits one shard's chunk while queries to
// every shard — the rebuilding one included — keep answering from lock-free
// snapshots.
type ShardedDynamic1D struct {
	shardSet
	shards []*Dynamic1D
}

// NewShardedDynamic builds a sharded dynamic index over the initial
// dataset; chunking and clamping follow BuildSharded.
func NewShardedDynamic(agg Agg, keys, measures []float64, shards int, opt Options) (*ShardedDynamic1D, error) {
	chunks, bounds, opt, err := shardPlan(agg, keys, measures, shards, opt)
	if err != nil {
		return nil, err
	}
	built := make([]*Dynamic1D, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c chunk) {
			defer wg.Done()
			if c.measures == nil {
				c.measures = make([]float64, len(c.keys))
			}
			built[i], errs[i] = NewDynamic(agg, c.keys, c.measures, opt)
		}(i, c)
	}
	wg.Wait()
	if err := firstErr(errs...); err != nil {
		return nil, err
	}
	return &ShardedDynamic1D{
		shardSet: shardSet{agg: agg, delta: built[0].state.Load().base.delta, bounds: bounds, qs: queriers(built)},
		shards:   built,
	}, nil
}

// AssembleShardedDynamic reconstitutes a sharded dynamic index from
// already-restored shards and their routing bounds — the recovery path of
// the serving layer, where each shard's snapshot and WAL are recovered
// independently. The shards must agree on aggregate and δ, hold disjoint
// ascending key ranges consistent with the bounds, and len(bounds) must be
// len(shards)−1.
func AssembleShardedDynamic(bounds []float64, shards []*Dynamic1D) (*ShardedDynamic1D, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: assemble sharded: no shards", ErrBadFormat)
	}
	if len(bounds) != len(shards)-1 {
		return nil, fmt.Errorf("%w: assemble sharded: %d bounds for %d shards", ErrBadFormat, len(bounds), len(shards))
	}
	agg := shards[0].agg
	delta := shards[0].state.Load().base.delta
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("%w: assemble sharded: non-finite bound %g", ErrBadFormat, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("%w: assemble sharded: bounds not strictly increasing at %d", ErrBadFormat, i)
		}
	}
	for i, sh := range shards {
		if sh.agg != agg {
			return nil, fmt.Errorf("%w: assemble sharded: shard %d aggregate %v, want %v", ErrBadFormat, i, sh.agg, agg)
		}
		if d := sh.state.Load().base.delta; d != delta {
			return nil, fmt.Errorf("%w: assemble sharded: shard %d delta %g, want %g", ErrBadFormat, i, d, delta)
		}
		lo, hi := sh.KeyRange()
		if i > 0 && lo < bounds[i-1] {
			return nil, fmt.Errorf("%w: assemble sharded: shard %d key %g below bound %g", ErrBadFormat, i, lo, bounds[i-1])
		}
		if i < len(bounds) && hi >= bounds[i] {
			return nil, fmt.Errorf("%w: assemble sharded: shard %d key %g at or above bound %g", ErrBadFormat, i, hi, bounds[i])
		}
	}
	return &ShardedDynamic1D{
		shardSet: shardSet{
			agg: agg, delta: delta,
			bounds: append([]float64(nil), bounds...),
			qs:     queriers(shards),
		},
		shards: shards,
	}, nil
}

// Insert routes the record to the shard owning its key and takes only that
// shard's lock, so inserts to different shards never contend and one
// shard's merge-rebuild never blocks the others. Duplicate keys within the
// owning shard are rejected (the routing bounds are static, so the owning
// shard is the only one that could hold the key).
func (s *ShardedDynamic1D) Insert(key, measure float64) error {
	return s.shards[shardOf(s.bounds, key)].Insert(key, measure)
}

// RangeSumRel answers a COUNT/SUM query with the relative guarantee εrel,
// gating on the composed bound and falling back to the per-shard exact
// paths (which fold in each shard's delta buffer exactly).
// The returned bound mirrors Sharded1D.RangeSumRel.
func (s *ShardedDynamic1D) RangeSumRel(lq, uq, epsRel float64) (val, bound float64, usedExact bool, err error) {
	return s.RangeSumRelCtx(context.Background(), lq, uq, epsRel)
}

// RangeSumRelCtx is RangeSumRel honoring cancellation across both the
// approximate gather and the per-shard exact fallback sweep.
func (s *ShardedDynamic1D) RangeSumRelCtx(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, usedExact bool, err error) {
	est, bnd, pass, empty, a, b, err := s.relGateSum(ctx, lq, uq, epsRel)
	if err != nil || empty {
		return 0, 0, false, err
	}
	if pass {
		return est, bnd, false, nil
	}
	exact := 0.0
	for i := a; i <= b; i++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, false, err
		}
		st := s.shards[i].state.Load()
		if st.base.exactCF == nil {
			return 0, 0, false, ErrNoFallback
		}
		exact += st.base.exactCF.RangeSum(lq, uq) + st.bufferSum(lq, uq)
	}
	return exact, 0, true, nil
}

// RangeExtremumRel answers a MIN/MAX query with the relative guarantee
// εrel; on gate failure the per-shard exact trees (combined with each
// shard's exact buffer extremum) answer.
// The returned bound mirrors Sharded1D.RangeExtremumRel.
func (s *ShardedDynamic1D) RangeExtremumRel(lq, uq, epsRel float64) (val, bound float64, usedExact, ok bool, err error) {
	return s.RangeExtremumRelCtx(context.Background(), lq, uq, epsRel)
}

// RangeExtremumRelCtx is RangeExtremumRel honoring cancellation, as
// RangeSumRelCtx.
func (s *ShardedDynamic1D) RangeExtremumRelCtx(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, usedExact, ok bool, err error) {
	est, pass, got, empty, a, b, err := s.relGateExtremum(ctx, lq, uq, epsRel)
	if err != nil || empty {
		return 0, 0, false, false, err
	}
	if pass {
		return est, s.delta, false, got, nil
	}
	best, found := 0.0, false
	for i := a; i <= b; i++ {
		if err := ctx.Err(); err != nil {
			return 0, 0, false, false, err
		}
		st := s.shards[i].state.Load()
		if st.base.exactExt == nil {
			return 0, 0, false, false, ErrNoFallback
		}
		ev, eok := st.base.exactExt.Query(lq, uq)
		if st.base.neg {
			ev = -ev
		}
		bv, bok := st.bufferExtremum(s.agg, lq, uq)
		ev, eok, _ = combineExtrema(s.agg, ev, eok, bv, bok)
		best, found, _ = combineExtrema(s.agg, best, found, ev, eok)
	}
	return best, 0, true, found, nil
}

// Rebuild forces a merge-rebuild of every shard (concurrently). Queries
// keep answering from each shard's previous snapshot throughout.
func (s *ShardedDynamic1D) Rebuild() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *Dynamic1D) {
			defer wg.Done()
			errs[i] = sh.Rebuild()
		}(i, sh)
	}
	wg.Wait()
	return firstErr(errs...)
}

// RebuildShard forces a merge-rebuild of one shard only; the other shards
// are untouched and their queries and inserts proceed undisturbed.
func (s *ShardedDynamic1D) RebuildShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrShardOutOfRange, i, len(s.shards))
	}
	return s.shards[i].Rebuild()
}

// Shard returns the i-th shard (for stats, per-shard persistence, tests).
func (s *ShardedDynamic1D) Shard(i int) *Dynamic1D { return s.shards[i] }

// Len returns the total record count (bases + buffers) across shards.
func (s *ShardedDynamic1D) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Generation returns the summed mutation counter of all shards. Each
// shard's counter only ever increases, so the sum is monotonic: any insert
// or rebuild anywhere in the sharded index moves it, which is exactly the
// invalidation property coalescing and caching need.
func (s *ShardedDynamic1D) Generation() uint64 {
	var g uint64
	for _, sh := range s.shards {
		g += sh.Generation()
	}
	return g
}

// BufferLen returns the total not-yet-merged insert count across shards.
func (s *ShardedDynamic1D) BufferLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.BufferLen()
	}
	return n
}
