package core

// Succinct segment storage. Segments are held as a structure-of-arrays
// coefficient store: one contiguous lane per polynomial degree (c0[], c1[],
// …) that locate/CF/QueryBatch walk branch-free, plus the segment
// boundaries. Three on-disk/in-memory encodings share that shape:
//
//   - EncRaw: float64 lanes plus explicit frame lanes. Numerically identical
//     to the historical array-of-structs layout (padded Horner over zeroed
//     high lanes evaluates bit-for-bit like the trimmed per-segment
//     polynomial), and the only encoding that can represent a POL1 v1 blob
//     losslessly.
//   - EncF32: float32 coefficient lanes; boundaries stay exact float64 and
//     frames are derived from them (the fitter always frames a segment onto
//     its own [Lo, Hi], so nothing is lost).
//   - EncPacked: fixed-point lanes. Segment starts are quantized onto a
//     uint32 grid over the key domain, Hi becomes the next segment's start
//     (CF is constant across gaps, so COUNT/SUM answers keep their bound;
//     MIN/MAX refuses this encoding — see tryPacked), and each coefficient
//     lane is stored on its own affine uint16/uint32 grid. The fitted
//     polynomials are re-expressed in the frame of their quantized
//     boundaries via poly.ComposeAffine, so decoding needs no re-fit.
//
// A compressed encoding is only adopted after certification: the full
// encoded query pipeline (locate → clamp → evaluate) is re-run over every
// fitted sample and must stay within the build δ. That keeps Definition 3 —
// and with it every guarantee of Section V — intact per encoding, which is
// exactly the adaptive compressed-vs-raw scheme of LeMonHash's
// PolymorphicPGM. When certification fails (clustered keys colliding on the
// key grid, residuals already at δ, non-finite coefficients) the build falls
// back to the next heavier encoding instead of shipping an uncertified
// index.

import (
	"math"

	"repro/internal/poly"
	"repro/internal/segment"
)

// Encoding identifies how an index stores its fitted coefficients.
type Encoding uint8

// Encodings, ordered from "choose for me" through heaviest to lightest.
// EncAuto is only a build option; a built index always reports one of the
// other three.
const (
	EncAuto   Encoding = iota // build: smallest encoding that certifies δ
	EncRaw                    // float64 lanes, lossless
	EncF32                    // float32 coefficient lanes
	EncPacked                 // fixed-point lanes on per-lane affine grids
)

func (e Encoding) String() string {
	switch e {
	case EncAuto:
		return "auto"
	case EncRaw:
		return "raw"
	case EncF32:
		return "float32"
	case EncPacked:
		return "packed"
	default:
		return "invalid"
	}
}

// valid reports whether e can appear in a serialised blob header.
func (e Encoding) valid() bool { return e == EncRaw || e == EncF32 || e == EncPacked }

// encShaves are the fractions of δ reserved for encoding error when the
// build re-segments for compression: greedy segmentation drives the fit
// residual right up to δ, leaving no headroom to quantize, so the
// compression retry fits at δ·(1−shave) and certifies the encoded pipeline
// against the original δ. The certified, user-visible δ never changes. The
// ladder starts light — segment count grows steeply as δ shrinks, so the
// smallest shave that certifies wins on total bytes — and falls back to a
// deep shave for noisy data where light headroom is not enough.
var encShaves = []float64{0.08, 0.25}

// minRefitSegments gates the shaved re-fit: below this the index is already
// tiny and a second segmentation pass buys nothing worth the build time.
const minRefitSegments = 64

// maxLanes bounds the coefficient lane count accepted from blobs (the fitter
// never exceeds degree+1, with the paper's degrees ≤ 8).
const maxLanes = 64

// --- accessors --------------------------------------------------------------

// loAt returns segment i's (possibly decoded) start boundary.
func (ix *Index1D) loAt(i int) float64 {
	if ix.enc == EncPacked {
		return ix.keyLo + float64(ix.loQ[i])*ix.keyStep
	}
	return ix.segLo[i]
}

// hiAt returns segment i's end boundary. Packed indexes do not store ends:
// the cumulative function is constant across inter-segment gaps, so the next
// segment's start (or the domain end for the last segment) clamps
// identically.
func (ix *Index1D) hiAt(i int) float64 {
	if ix.enc == EncPacked {
		if i+1 < len(ix.loQ) {
			return ix.keyLo + float64(ix.loQ[i+1])*ix.keyStep
		}
		return ix.keyHi
	}
	return ix.segHi[i]
}

// frameAt returns segment i's evaluation frame. Raw keeps the explicit
// per-segment frame lanes (a POL1 v1 blob may carry arbitrary frames);
// compressed encodings derive it from the boundaries with exactly the
// poly.NewFrame formulas.
func (ix *Index1D) frameAt(i int) (c, hw float64) {
	if ix.enc == EncRaw {
		return ix.frCtr[i], ix.frHW[i]
	}
	lo, hi := ix.loAt(i), ix.hiAt(i)
	c = 0.5 * (lo + hi)
	hw = 0.5 * (hi - lo)
	if hw <= 0 {
		hw = 1
	}
	return c, hw
}

// coeffAt decodes the lane-j coefficient of segment i.
func (ix *Index1D) coeffAt(j, i int) float64 {
	switch ix.enc {
	case EncF32:
		return float64(ix.laneF32[j][i])
	case EncPacked:
		var q float64
		if l := ix.laneU16[j]; l != nil {
			q = float64(l[i])
		} else {
			q = float64(ix.laneU32[j][i])
		}
		return ix.laneOff[j] + ix.laneScale[j]*q
	default:
		return ix.laneF64[j][i]
	}
}

// evalSeg evaluates segment i's polynomial at raw key k: frame-normalise,
// then Horner straight down the coefficient lanes. The raw branch is
// bit-identical to the historical FramedPoly evaluation.
func (ix *Index1D) evalSeg(i int, k float64) float64 {
	switch ix.enc {
	case EncRaw:
		t := (k - ix.frCtr[i]) / ix.frHW[i]
		acc := 0.0
		for j := ix.laneW - 1; j >= 0; j-- {
			acc = acc*t + ix.laneF64[j][i]
		}
		return acc
	case EncF32:
		lo, hi := ix.segLo[i], ix.segHi[i]
		c := 0.5 * (lo + hi)
		hw := 0.5 * (hi - lo)
		if hw <= 0 {
			hw = 1
		}
		t := (k - c) / hw
		acc := 0.0
		for j := ix.laneW - 1; j >= 0; j-- {
			acc = acc*t + float64(ix.laneF32[j][i])
		}
		return acc
	default: // EncPacked
		c, hw := ix.frameAt(i)
		t := (k - c) / hw
		acc := 0.0
		for j := ix.laneW - 1; j >= 0; j-- {
			var q float64
			if l := ix.laneU16[j]; l != nil {
				q = float64(l[i])
			} else {
				q = float64(ix.laneU32[j][i])
			}
			acc = acc*t + ix.laneOff[j] + ix.laneScale[j]*q
		}
		return acc
	}
}

// framedPolyAt materialises segment i as a FramedPoly for the MIN/MAX
// boundary-segment maximisation (Eq. 17), which needs root isolation rather
// than point evaluation. Trailing zero coefficients are trimmed so the
// root-finding dispatch (quadratic fast path etc.) sees the same polynomial
// the fitter produced.
func (ix *Index1D) framedPolyAt(i int) poly.FramedPoly {
	c, hw := ix.frameAt(i)
	p := make(poly.Poly, ix.laneW)
	for j := range p {
		p[j] = ix.coeffAt(j, i)
	}
	return poly.FramedPoly{F: poly.Frame{Center: c, HalfWidth: hw}, P: p.Trim()}
}

// Encoding returns the coefficient-store encoding the build (or blob) chose.
func (ix *Index1D) Encoding() Encoding { return ix.enc }

// CoeffSizeBytes reports the footprint of the coefficient lanes alone
// (included in SizeBytes): the bytes the adaptive encoding actually
// compresses.
func (ix *Index1D) CoeffSizeBytes() int {
	h := ix.NumSegments()
	switch ix.enc {
	case EncF32:
		return 4 * ix.laneW * h
	case EncPacked:
		sz := 0
		for j := 0; j < ix.laneW; j++ {
			if ix.laneU16[j] != nil {
				sz += 2 * h
			} else {
				sz += 4 * h
			}
			sz += 16 // per-lane affine grid (offset + scale)
		}
		return sz
	default:
		return 8 * ix.laneW * h
	}
}

// BoundSizeBytes reports the footprint of the segment boundaries and frames
// (included in SizeBytes): 32 B/segment raw, 16 B/segment float32 (frames
// derived), 4 B/segment packed (uint32 grid starts, no ends, no frames).
func (ix *Index1D) BoundSizeBytes() int {
	h := ix.NumSegments()
	switch ix.enc {
	case EncF32:
		return 16 * h
	case EncPacked:
		return 4*h + 8 // grid starts + key-grid step
	default:
		return 32 * h
	}
}

// --- build-time adoption and selection --------------------------------------

// adoptRawSegments fills the raw SoA store from freshly fitted segments:
// boundary arrays, explicit frame lanes, zero-padded coefficient lanes, and
// the learned root. Every build starts here; selectEncoding may then swap in
// a certified compressed store.
func (ix *Index1D) adoptRawSegments(segs []segment.Segment) {
	h := len(segs)
	w := 0
	fits := 0
	for _, s := range segs {
		if len(s.Fit.P.P) > w {
			w = len(s.Fit.P.P)
		}
		fits += s.Fit.Iters
	}
	ix.enc = EncRaw
	ix.laneW = w
	ix.segLo = make([]float64, h)
	ix.segHi = make([]float64, h)
	ix.frCtr = make([]float64, h)
	ix.frHW = make([]float64, h)
	ix.laneF64 = makeLanesF64(w, h)
	ix.laneF32, ix.laneU16, ix.laneU32 = nil, nil, nil
	ix.laneOff, ix.laneScale = nil, nil
	ix.loQ, ix.keyStep = nil, 0
	for i, s := range segs {
		ix.segLo[i] = s.Lo
		ix.segHi[i] = s.Hi
		ix.frCtr[i] = s.Fit.P.F.Center
		ix.frHW[i] = s.Fit.P.F.HalfWidth
		for j, cv := range s.Fit.P.P {
			ix.laneF64[j][i] = cv
		}
	}
	ix.buildsFits = fits
	ix.buildRoot()
}

func makeLanesF64(w, h int) [][]float64 {
	lanes := make([][]float64, w)
	flat := make([]float64, w*h)
	for j := range lanes {
		lanes[j] = flat[j*h : (j+1)*h]
	}
	return lanes
}

// selectEncoding picks the coefficient encoding per Options.Encoding.
// cumulative marks COUNT/SUM indexes (ys = fitted CF samples); extremum
// indexes pass their internal measure samples. The raw store must already be
// adopted. Order for EncAuto: packed, float32, raw — smallest certified
// wins. A forced compressed encoding that cannot certify δ falls back to the
// next heavier one rather than violating the guarantee.
func (ix *Index1D) selectEncoding(keys, ys []float64, segs []segment.Segment, opt Options, cumulative bool) {
	mode := opt.Encoding
	if mode == EncRaw {
		return
	}
	tryQ := (mode == EncAuto || mode == EncPacked) && cumulative
	if tryQ {
		best := ix.tryPacked(keys, ys, segs)
		if (best == nil || best.hasWideLane()) && len(segs) >= minRefitSegments {
			// Residuals are at δ with little left for the quantizer: re-segment
			// with headroom shaved off and certify against the original δ,
			// keeping whichever certified candidate is smallest overall (the
			// refit trades segment count for narrower lanes, which only pays
			// when the direct pack had to fall back to wide grids).
			for _, shave := range encShaves {
				shaved, err := segment.Greedy(keys, ys, segment.Config{
					Degree: opt.Degree, Delta: opt.Delta * (1 - shave),
					Backend: opt.Backend, NoExpSearch: opt.NoExpSearch,
					Parallelism: opt.Parallelism,
				})
				if err != nil {
					continue
				}
				skel := &Index1D{agg: ix.agg, degree: ix.degree, delta: ix.delta, neg: ix.neg,
					n: ix.n, keyLo: ix.keyLo, keyHi: ix.keyHi, total: ix.total}
				skel.adoptRawSegments(shaved)
				cand := skel.tryPacked(keys, ys, shaved)
				if cand == nil {
					continue
				}
				cand.buildsFits += ix.buildsFits // account for both passes
				if best == nil || cand.SizeBytes() < best.SizeBytes() {
					best = cand
				}
				break // a deeper shave only inflates the segment count further
			}
		}
		if best != nil {
			*ix = *best
			return
		}
	}
	if mode == EncAuto || mode == EncF32 || mode == EncPacked {
		ix.tryF32(keys, ys, segs, cumulative)
	}
}

// hasWideLane reports whether any packed coefficient lane fell back to the
// uint32 grid — the signal that a shaved re-fit might buy a smaller index.
func (ix *Index1D) hasWideLane() bool {
	for _, l := range ix.laneU32 {
		if l != nil {
			return true
		}
	}
	return false
}

// verifyCF certifies a candidate COUNT/SUM store: the full encoded pipeline
// (locate → clamp → evaluate) must stay within tol of the fitted cumulative
// sample at every key. This is Definition 3 re-checked through the encoding,
// including boundary mis-routing where a sample quantizes into its
// neighbour's cell. Non-finite results fail the comparison and the
// candidate.
func (ix *Index1D) verifyCF(keys, ys []float64, tol float64) bool {
	for i, k := range keys {
		if d := math.Abs(ix.CF(k) - ys[i]); !(d <= tol) {
			return false
		}
	}
	return true
}

// verifySegs certifies a candidate store segment-wise: every fitted sample
// must evaluate within tol of its target through the encoded coefficients.
// This is the check extremum indexes need — their traversal maximises
// per-segment polynomials, so Definition 3 per segment is exactly the
// property Lemma 4 consumes.
func (ix *Index1D) verifySegs(keys, ys []float64, segs []segment.Segment, tol float64) bool {
	for i, s := range segs {
		for j := s.First; j <= s.Last; j++ {
			if d := math.Abs(ix.evalSeg(i, keys[j]) - ys[j]); !(d <= tol) {
				return false
			}
		}
	}
	return true
}

// tryF32 attempts the float32 lane encoding on the already-adopted raw
// store. Boundaries stay exact, so only coefficient rounding is at stake;
// certification runs the same pipeline the queries will.
func (ix *Index1D) tryF32(keys, ys []float64, segs []segment.Segment, cumulative bool) bool {
	h := ix.NumSegments()
	w := ix.laneW
	lanes := make([][]float32, w)
	flat := make([]float32, w*h)
	for j := range lanes {
		lanes[j] = flat[j*h : (j+1)*h]
		for i := 0; i < h; i++ {
			lanes[j][i] = float32(ix.laneF64[j][i])
		}
	}
	cand := *ix
	cand.enc = EncF32
	cand.laneF32 = lanes
	cand.laneF64 = nil
	cand.frCtr, cand.frHW = nil, nil
	ok := false
	if cumulative {
		ok = cand.verifyCF(keys, ys, ix.delta)
	} else {
		ok = cand.verifySegs(keys, ys, segs, ix.delta)
	}
	if !ok {
		return false
	}
	*ix = cand
	ix.buildRoot() // root reads boundaries only, but keep derived state fresh
	return true
}

// tryPacked attempts the fixed-point encoding: uint32 key-grid starts, no
// stored ends, per-lane affine uint16/uint32 coefficient grids. COUNT/SUM
// only — the MIN/MAX traversal needs exact boundaries to bound which
// segments a range overlaps (a quantized boundary could pull a neighbouring
// segment's extremum into a range that never touches it, breaking the
// covering side of Lemma 4), and extremum indexes are dominated by their
// exact per-segment extrema + RMQ anyway.
func (ix *Index1D) tryPacked(keys, ys []float64, segs []segment.Segment) *Index1D {
	h := len(segs)
	if h < 1 || ix.agg == Max || ix.agg == Min || ix.neg {
		return nil
	}
	span := ix.keyHi - ix.keyLo
	if !(span > 0) || math.IsInf(span, 0) {
		return nil
	}
	step := span / float64(math.MaxUint32)
	loQ := make([]uint32, h)
	for i, s := range segs {
		q := math.Floor((s.Lo - ix.keyLo) / step)
		if !(q >= 0) {
			q = 0
		}
		if q > math.MaxUint32 {
			q = math.MaxUint32
		}
		loQ[i] = uint32(q)
		if i > 0 && loQ[i] <= loQ[i-1] {
			return nil // boundaries collide on the grid (clustered keys)
		}
	}
	// Re-express every fitted polynomial in the frame of its quantized
	// boundaries (u = α + β·t with the new frame's normalisation), then
	// collect per-lane value ranges.
	w := ix.laneW
	if w == 0 {
		return nil
	}
	vals := makeLanesF64(w, h)
	for i, s := range segs {
		lo := ix.keyLo + float64(loQ[i])*step
		var hi float64
		if i+1 < h {
			hi = ix.keyLo + float64(loQ[i+1])*step
		} else {
			hi = ix.keyHi
		}
		c := 0.5 * (lo + hi)
		hw := 0.5 * (hi - lo)
		if hw <= 0 {
			hw = 1
		}
		f := s.Fit.P.F
		alpha := (c - f.Center) / f.HalfWidth
		beta := hw / f.HalfWidth
		p := s.Fit.P.P.ComposeAffine(alpha, beta)
		if len(p) > w {
			return nil
		}
		for j, cv := range p {
			if math.IsNaN(cv) || math.IsInf(cv, 0) {
				return nil
			}
			vals[j][i] = cv
		}
	}
	// Per-lane grid widths, decided empirically: start every lane on uint16
	// (pre-bumping lanes whose grid step alone already exceeds δ — typically
	// the intercept lane, whose values span the whole cumulative range), and
	// while certification fails widen the coarsest uint16 lane to uint32.
	// Certification is the final word on every attempt, so a lane keeps the
	// narrow grid exactly when the paper's guarantee survives it.
	wide := make([]bool, w)
	for j := 0; j < w; j++ {
		lo, hi := laneRange(vals[j])
		if !(hi-lo >= 0) || math.IsInf(hi-lo, 0) {
			return nil
		}
		wide[j] = (hi-lo)/65535/2 > ix.delta
	}
	for tries := 0; tries <= w; tries++ {
		cand := ix.packCandidate(loQ, step, vals, wide)
		if cand.verifyCF(keys, ys, ix.delta) {
			return cand
		}
		worst := -1
		worstStep := 0.0
		for j := 0; j < w; j++ {
			if !wide[j] && cand.laneScale[j] > worstStep {
				worst, worstStep = j, cand.laneScale[j]
			}
		}
		if worst < 0 {
			return nil // every lane already uint32 and δ still broken
		}
		wide[worst] = true
	}
	return nil
}

// laneRange returns the min and max of one transformed coefficient lane.
func laneRange(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// packCandidate quantizes the transformed lanes onto affine grids and
// assembles a packed candidate index; wide[j] selects a uint32 grid for lane
// j instead of uint16.
func (ix *Index1D) packCandidate(loQ []uint32, step float64, vals [][]float64, wide []bool) *Index1D {
	w := len(vals)
	h := len(loQ)
	cand := *ix
	cand.enc = EncPacked
	cand.loQ = loQ
	cand.keyStep = step
	cand.segLo, cand.segHi = nil, nil
	cand.frCtr, cand.frHW = nil, nil
	cand.laneF64, cand.laneF32 = nil, nil
	cand.laneU16 = make([][]uint16, w)
	cand.laneU32 = make([][]uint32, w)
	cand.laneOff = make([]float64, w)
	cand.laneScale = make([]float64, w)
	for j := 0; j < w; j++ {
		lo, hi := laneRange(vals[j])
		cand.laneOff[j] = lo
		spread := hi - lo
		if !wide[j] {
			scale := spread / 65535
			cand.laneScale[j] = scale
			lane := make([]uint16, h)
			for i, v := range vals[j] {
				lane[i] = uint16(quantIdx(v, lo, scale, 65535))
			}
			cand.laneU16[j] = lane
			continue
		}
		scale := spread / float64(math.MaxUint32)
		cand.laneScale[j] = scale
		lane := make([]uint32, h)
		for i, v := range vals[j] {
			lane[i] = uint32(quantIdx(v, lo, scale, math.MaxUint32))
		}
		cand.laneU32[j] = lane
	}
	cand.buildRoot()
	return &cand
}

// quantIdx maps v onto the affine grid {off + scale·q}, rounding to nearest
// and clamping into [0, max].
func quantIdx(v, off, scale float64, max float64) float64 {
	if scale <= 0 {
		return 0
	}
	q := math.Round((v - off) / scale)
	if !(q >= 0) {
		return 0
	}
	if q > max {
		return max
	}
	return q
}
