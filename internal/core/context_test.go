package core

import (
	"context"
	"errors"
	"testing"
)

func buildShardedForCtx(t *testing.T, shards int) *ShardedDynamic1D {
	t.Helper()
	keys := make([]float64, 4096)
	measures := make([]float64, 4096)
	for i := range keys {
		keys[i] = float64(i)
		measures[i] = 1
	}
	s, err := NewShardedDynamic(Count, keys, measures, shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A cancelled context stops every sharded query path with ctx.Err().
func TestShardedQueryCtxCancelled(t *testing.T) {
	s := buildShardedForCtx(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := s.RangeSumCtx(ctx, 0, 4095); !errors.Is(err, context.Canceled) {
		t.Errorf("RangeSumCtx: err = %v, want context.Canceled", err)
	}
	if _, err := s.QueryBatchCtx(ctx, []Range{{Lo: 0, Hi: 100}}); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryBatchCtx: err = %v, want context.Canceled", err)
	}
	if _, _, _, err := s.RangeSumRelCtx(ctx, 0, 4095, 0.01); !errors.Is(err, context.Canceled) {
		t.Errorf("RangeSumRelCtx: err = %v, want context.Canceled", err)
	}

	m := buildShardedMaxForCtx(t)
	if _, _, _, err := m.RangeExtremumCtx(ctx, 0, 4095); !errors.Is(err, context.Canceled) {
		t.Errorf("RangeExtremumCtx: err = %v, want context.Canceled", err)
	}
	if _, _, _, _, err := m.RangeExtremumRelCtx(ctx, 0, 4095, 0.01); !errors.Is(err, context.Canceled) {
		t.Errorf("RangeExtremumRelCtx: err = %v, want context.Canceled", err)
	}
}

func buildShardedMaxForCtx(t *testing.T) *ShardedDynamic1D {
	t.Helper()
	keys := make([]float64, 4096)
	measures := make([]float64, 4096)
	for i := range keys {
		keys[i] = float64(i)
		measures[i] = float64(i % 100)
	}
	s, err := NewShardedDynamic(Max, keys, measures, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A live context changes nothing: ctx variants and plain variants agree
// exactly.
func TestShardedQueryCtxLiveMatchesPlain(t *testing.T) {
	s := buildShardedForCtx(t, 8)
	ctx := context.Background()
	v1, b1, err1 := s.RangeSum(10, 4000)
	v2, b2, err2 := s.RangeSumCtx(ctx, 10, 4000)
	if v1 != v2 || b1 != b2 || (err1 == nil) != (err2 == nil) {
		t.Fatalf("RangeSum mismatch: (%g,%g,%v) vs (%g,%g,%v)", v1, b1, err1, v2, b2, err2)
	}
	r := []Range{{Lo: 0, Hi: 100}, {Lo: 50, Hi: 2000}, {Lo: -5, Hi: 5000}}
	p1, e1 := s.QueryBatch(r)
	p2, e2 := s.QueryBatchCtx(ctx, r)
	if (e1 == nil) != (e2 == nil) || len(p1) != len(p2) {
		t.Fatalf("QueryBatch mismatch: %v vs %v", e1, e2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("QueryBatch result %d: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

// Generation moves on every successful insert and rebuild, and never on a
// rejected insert.
func TestGenerationCounter(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	measures := make([]float64, len(keys))
	d, err := NewDynamic(Count, keys, measures, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g0 := d.Generation()
	if err := d.Insert(100, 1); err != nil {
		t.Fatal(err)
	}
	if g := d.Generation(); g != g0+1 {
		t.Fatalf("generation after insert: %d, want %d", g, g0+1)
	}
	if err := d.Insert(100, 1); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if g := d.Generation(); g != g0+1 {
		t.Fatalf("generation moved on rejected insert: %d", g)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if g := d.Generation(); g <= g0+1 {
		t.Fatalf("generation after rebuild: %d, want > %d", g, g0+1)
	}
}

// The sharded generation is the sum over shards and moves on any shard's
// insert.
func TestShardedGeneration(t *testing.T) {
	s := buildShardedForCtx(t, 4)
	g0 := s.Generation()
	if err := s.Insert(10000, 1); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != g0+1 {
		t.Fatalf("sharded generation after insert: %d, want %d", g, g0+1)
	}
	if err := s.Insert(-5, 1); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != g0+2 {
		t.Fatalf("sharded generation after second insert: %d, want %d", g, g0+2)
	}
}
