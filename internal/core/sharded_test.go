package core

import (
	"math"
	"math/rand"
	"testing"
)

func buildShardedFor(t testing.TB, agg Agg, keys, measures []float64, k int, opt Options) *Sharded1D {
	t.Helper()
	s, err := BuildSharded(agg, keys, measures, k, opt)
	if err != nil {
		t.Fatalf("BuildSharded(%v, k=%d): %v", agg, k, err)
	}
	return s
}

// TestShardedMatchesExact checks the absolute guarantee of scatter-gather
// answers against brute force, for every aggregate and several shard
// counts (including K=1 and K>len split degenerate cases).
func TestShardedMatchesExact(t *testing.T) {
	keys, measures := genDataset(3000, 17)
	const delta = 25.0
	rng := rand.New(rand.NewSource(99))
	for _, k := range []int{1, 2, 4, 7, 16} {
		for _, agg := range []Agg{Count, Sum, Max, Min} {
			s := buildShardedFor(t, agg, keys, measures, k, Options{Delta: delta})
			if s.NumShards() != k {
				t.Fatalf("k=%d: got %d shards", k, s.NumShards())
			}
			for q := 0; q < 300; q++ {
				i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
				if i > j {
					i, j = j, i
				}
				lq, uq := keys[i], keys[j]
				switch agg {
				case Count, Sum:
					v, bound, err := s.RangeSum(lq, uq)
					if err != nil {
						t.Fatal(err)
					}
					var exact float64
					if agg == Count {
						exact = float64(j - i)
					} else {
						exact = exactSumHalfOpen(keys, measures, lq, uq)
					}
					if math.Abs(v-exact) > bound+1e-9*(1+math.Abs(exact)) {
						t.Fatalf("%v k=%d (%g,%g]: est %g exact %g bound %g", agg, k, lq, uq, v, exact, bound)
					}
				case Max, Min:
					v, bound, ok, err := s.RangeExtremum(lq, uq)
					if err != nil {
						t.Fatal(err)
					}
					exact, eok := exactMax(keys, measures, lq, uq)
					if agg == Min {
						exact, eok = exactMin(keys, measures, lq, uq)
					}
					if ok != eok {
						t.Fatalf("%v k=%d [%g,%g]: found %v, exact found %v", agg, k, lq, uq, ok, eok)
					}
					if ok && math.Abs(v-exact) > bound+1e-9*(1+math.Abs(exact)) {
						t.Fatalf("%v k=%d [%g,%g]: est %g exact %g bound %g", agg, k, lq, uq, v, exact, bound)
					}
				}
			}
		}
	}
}

// TestShardedBoundComposition checks the reported bound: 2δ·m for
// COUNT/SUM over m touched shards, δ for MIN/MAX regardless of span.
func TestShardedBoundComposition(t *testing.T) {
	keys, measures := genDataset(2000, 23)
	const delta = 10.0
	s := buildShardedFor(t, Count, keys, measures, 4, Options{Delta: delta})
	b := s.Bounds()
	// A range inside shard 1 touches one shard.
	if _, bound, _ := s.RangeSum(b[0], math.Nextafter(b[1], b[0])); bound != 2*delta {
		t.Fatalf("interior bound %g, want %g", bound, 2*delta)
	}
	// A full-span range touches all four.
	if _, bound, _ := s.RangeSum(keys[0]-1, keys[len(keys)-1]+1); bound != 8*delta {
		t.Fatalf("full-span bound %g, want %g", bound, 8*delta)
	}
	m := buildShardedFor(t, Max, keys, measures, 4, Options{Delta: delta})
	if _, bound, _, _ := m.RangeExtremum(keys[0], keys[len(keys)-1]); bound != delta {
		t.Fatalf("extremum bound %g, want %g", bound, delta)
	}
}

// TestShardedBatchMatchesSingle checks QueryBatch against per-range single
// queries, bitwise, for random and empty ranges across all aggregates.
func TestShardedBatchMatchesSingle(t *testing.T) {
	keys, measures := genDataset(2500, 31)
	rng := rand.New(rand.NewSource(7))
	ranges := make([]Range, 400)
	for i := range ranges {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if rng.Intn(10) == 0 {
			a, b = b, math.Min(a, b)-1 // inverted (empty) range
		} else if a > b {
			a, b = b, a
		}
		ranges[i] = Range{Lo: a, Hi: b}
	}
	for _, agg := range []Agg{Count, Sum, Max, Min} {
		s := buildShardedFor(t, agg, keys, measures, 5, Options{Delta: 15})
		got, err := s.QueryBatch(ranges)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range ranges {
			var want BatchResult
			switch agg {
			case Count, Sum:
				v, _, err := s.RangeSum(r.Lo, r.Hi)
				if err != nil {
					t.Fatal(err)
				}
				want = BatchResult{Value: v, Found: true}
			default:
				v, _, ok, err := s.RangeExtremum(r.Lo, r.Hi)
				if err != nil {
					t.Fatal(err)
				}
				want = BatchResult{Value: v, Found: ok}
			}
			if got[i].Found != want.Found || math.Float64bits(got[i].Value) != math.Float64bits(want.Value) {
				t.Fatalf("%v range %d %+v: batch %+v, single %+v", agg, i, r, got[i], want)
			}
		}
	}
}

// TestShardedRel checks the relative-error path: certified answers within
// εrel of exact, and the exact fallback kicking in on small ranges.
func TestShardedRel(t *testing.T) {
	keys, measures := genDataset(2000, 41)
	s := buildShardedFor(t, Sum, keys, measures, 4, Options{Delta: 50})
	rng := rand.New(rand.NewSource(3))
	sawExact := false
	for q := 0; q < 400; q++ {
		i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
		if i > j {
			i, j = j, i
		}
		lq, uq := keys[i], keys[j]
		v, bound, usedExact, err := s.RangeSumRel(lq, uq, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if usedExact != (bound == 0) {
			t.Fatalf("(%g,%g]: exact=%v but bound=%g", lq, uq, usedExact, bound)
		}
		sawExact = sawExact || usedExact
		exact := exactSumHalfOpen(keys, measures, lq, uq)
		if exact > 0 && math.Abs(v-exact)/exact > 0.05+1e-9 {
			t.Fatalf("(%g,%g]: rel err %g (exact path %v)", lq, uq, math.Abs(v-exact)/exact, usedExact)
		}
	}
	if !sawExact {
		t.Fatal("no query exercised the exact fallback; shrink the workload")
	}
	// NoFallback indexes must refuse, not mis-certify.
	nf := buildShardedFor(t, Sum, keys, measures, 4, Options{Delta: 50, NoFallback: true})
	if _, _, _, err := nf.RangeSumRel(keys[0], keys[1], 0.05); err != ErrNoFallback {
		t.Fatalf("NoFallback rel query: err %v, want ErrNoFallback", err)
	}
	mx := buildShardedFor(t, Max, keys, measures, 4, Options{Delta: 50})
	for q := 0; q < 100; q++ {
		i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
		if i > j {
			i, j = j, i
		}
		v, _, _, ok, err := mx.RangeExtremumRel(keys[i], keys[j], 0.05)
		if err != nil {
			t.Fatal(err)
		}
		exact, eok := exactMax(keys, measures, keys[i], keys[j])
		if ok != eok {
			t.Fatalf("found mismatch")
		}
		if ok && exact > 0 && math.Abs(v-exact)/exact > 0.05+1e-9 {
			t.Fatalf("[%g,%g]: rel err %g", keys[i], keys[j], math.Abs(v-exact)/exact)
		}
	}
}

// TestShardedDynamicInsertAndQuery routes inserts across shards and checks
// answers (and shard locality) afterwards.
func TestShardedDynamicInsertAndQuery(t *testing.T) {
	keys, measures := genDataset(3000, 53)
	// Hold back every third record for inserting.
	var bk, bm, ik, im []float64
	for i := range keys {
		if i%3 == 2 {
			ik = append(ik, keys[i])
			im = append(im, measures[i])
		} else {
			bk = append(bk, keys[i])
			bm = append(bm, measures[i])
		}
	}
	for _, agg := range []Agg{Count, Sum, Max, Min} {
		sd, err := NewShardedDynamic(agg, bk, bm, 4, Options{Delta: 20})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ik {
			if err := sd.Insert(ik[i], im[i]); err != nil {
				t.Fatalf("insert %g: %v", ik[i], err)
			}
		}
		if sd.Len() != len(keys) {
			t.Fatalf("len %d, want %d", sd.Len(), len(keys))
		}
		// Duplicate detection must work across the routed shard.
		if err := sd.Insert(ik[0], 1); err == nil {
			t.Fatal("duplicate insert accepted")
		}
		// Endpoints come from the base key set: those are the workload
		// endpoints the paper's guarantee covers (inserted keys sit between
		// fitted samples until a rebuild folds them in); the exact answer
		// still aggregates over ALL records, buffered inserts included.
		rng := rand.New(rand.NewSource(int64(agg)))
		for q := 0; q < 200; q++ {
			i, j := rng.Intn(len(bk)), rng.Intn(len(bk))
			if i > j {
				i, j = j, i
			}
			lq, uq := bk[i], bk[j]
			switch agg {
			case Count, Sum:
				v, bound, err := sd.RangeSum(lq, uq)
				if err != nil {
					t.Fatal(err)
				}
				exact := exactSumHalfOpen(keys, measures, lq, uq)
				if agg == Count {
					exact = 0
					for _, k := range keys {
						if k > lq && k <= uq {
							exact++
						}
					}
				}
				if math.Abs(v-exact) > bound+1e-9*(1+math.Abs(exact)) {
					t.Fatalf("%v (%g,%g]: est %g exact %g bound %g", agg, lq, uq, v, exact, bound)
				}
			default:
				v, bound, ok, err := sd.RangeExtremum(lq, uq)
				if err != nil {
					t.Fatal(err)
				}
				exact, eok := exactMax(keys, measures, lq, uq)
				if agg == Min {
					exact, eok = exactMin(keys, measures, lq, uq)
				}
				if ok != eok || (ok && math.Abs(v-exact) > bound+1e-9*(1+math.Abs(exact))) {
					t.Fatalf("%v [%g,%g]: est %g (ok=%v) exact %g (ok=%v)", agg, lq, uq, v, ok, exact, eok)
				}
			}
		}
		// Per-shard rebuild folds only that shard's buffer.
		before := sd.BufferLen()
		hot := sd.ShardOf(ik[len(ik)/2])
		hotBuf := sd.Shard(hot).BufferLen()
		if err := sd.RebuildShard(hot); err != nil {
			t.Fatal(err)
		}
		if got := sd.BufferLen(); got != before-hotBuf {
			t.Fatalf("rebuild shard %d: buffer %d -> %d, want %d", hot, before, got, before-hotBuf)
		}
		if err := sd.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if sd.BufferLen() != 0 {
			t.Fatalf("buffer %d after full rebuild", sd.BufferLen())
		}
	}
}

// TestShardedNonFiniteEndpoints: NaN/Inf query endpoints must never panic
// — the sharded layer inherits the unsharded "garbage in, garbage out, no
// panic" contract (NaN routing can invert the shard window; shardSpan
// normalises it).
func TestShardedNonFiniteEndpoints(t *testing.T) {
	keys, measures := genDataset(500, 73)
	nan, inf := math.NaN(), math.Inf(1)
	edges := [][2]float64{
		{nan, 5}, {5, nan}, {nan, nan}, {-inf, nan}, {nan, inf}, {-inf, inf},
	}
	for _, agg := range []Agg{Count, Max} {
		s := buildShardedFor(t, agg, keys, measures, 4, Options{Delta: 10, NoFallback: true})
		sd, err := NewShardedDynamic(agg, keys, measures, 4, Options{Delta: 10, NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			switch agg {
			case Count:
				s.RangeSum(e[0], e[1])  //nolint:errcheck
				sd.RangeSum(e[0], e[1]) //nolint:errcheck
			default:
				s.RangeExtremum(e[0], e[1])  //nolint:errcheck
				sd.RangeExtremum(e[0], e[1]) //nolint:errcheck
			}
			ranges := []Range{{Lo: e[0], Hi: e[1]}, {Lo: keys[1], Hi: keys[10]}}
			if _, err := s.QueryBatch(ranges); err != nil {
				t.Fatal(err)
			}
			if _, err := sd.QueryBatch(ranges); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedRoundTrip checks POLS serialization for both kinds: static
// containers answer identically after a round trip, dynamic containers
// restore buffers, options, and fallbacks.
func TestShardedRoundTrip(t *testing.T) {
	keys, measures := genDataset(1500, 61)
	s := buildShardedFor(t, Sum, keys, measures, 4, Options{Delta: 30})
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if DetectBlob(blob) != BlobShardedStatic {
		t.Fatalf("DetectBlob = %v, want BlobShardedStatic", DetectBlob(blob))
	}
	var loaded Sharded1D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 200; q++ {
		i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
		if i > j {
			i, j = j, i
		}
		a, _, _ := s.RangeSum(keys[i], keys[j])
		b, _, _ := loaded.RangeSum(keys[i], keys[j])
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("round-trip drift: %g vs %g", a, b)
		}
	}
	// Loaded static containers drop fallbacks by design: a range too small
	// to pass the certification gate must refuse, not answer uncertified.
	if _, _, _, err := loaded.RangeSumRel(keys[10], keys[12], 0.001); err != ErrNoFallback {
		t.Fatalf("loaded rel query: %v, want ErrNoFallback", err)
	}

	sd, err := NewShardedDynamic(Max, keys, measures, 3, Options{Delta: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sd.Insert(keys[i]+0.01, measures[i]); err != nil {
			t.Fatal(err)
		}
	}
	dynBlob, err := sd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if DetectBlob(dynBlob) != BlobShardedDynamic {
		t.Fatalf("DetectBlob = %v, want BlobShardedDynamic", DetectBlob(dynBlob))
	}
	restored, err := RestoreShardedDynamic(dynBlob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.BufferLen() != sd.BufferLen() {
		t.Fatalf("buffer %d, want %d", restored.BufferLen(), sd.BufferLen())
	}
	for q := 0; q < 200; q++ {
		i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
		if i > j {
			i, j = j, i
		}
		a, _, aok, _ := sd.RangeExtremum(keys[i], keys[j])
		b, _, bok, _ := restored.RangeExtremum(keys[i], keys[j])
		if aok != bok || math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("dynamic round-trip drift at [%g,%g]", keys[i], keys[j])
		}
	}
	// Restored indexes stay insertable with duplicate detection intact.
	if err := restored.Insert(keys[0], 1); err == nil {
		t.Fatal("restored index accepted duplicate")
	}
	if err := restored.Insert(keys[len(keys)-1]+1, 5); err != nil {
		t.Fatal(err)
	}
	// Kind confusion errors cleanly in both directions.
	var wrong Sharded1D
	if err := wrong.UnmarshalBinary(dynBlob); err == nil {
		t.Fatal("static Unmarshal accepted dynamic container")
	}
	if _, err := RestoreShardedDynamic(blob); err == nil {
		t.Fatal("RestoreShardedDynamic accepted static container")
	}
}

// TestShardedUnmarshalCorrupt walks corruption classes the fuzz target
// covers, deterministically: truncations, bad shard counts, scrambled
// directory, non-monotone bounds.
func TestShardedUnmarshalCorrupt(t *testing.T) {
	keys, measures := genDataset(600, 71)
	s := buildShardedFor(t, Count, keys, measures, 4, Options{Delta: 10, NoFallback: true})
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 7 {
		var loaded Sharded1D
		if err := loaded.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Shard count tampering: directory says more/fewer shards than present.
	for _, k := range []uint32{0, 3, 5, 1 << 20} {
		bad := append([]byte(nil), blob...)
		bad[8] = byte(k)
		bad[9] = byte(k >> 8)
		bad[10] = byte(k >> 16)
		bad[11] = byte(k >> 24)
		var loaded Sharded1D
		if err := loaded.UnmarshalBinary(bad); err == nil {
			t.Fatalf("shard count %d accepted", k)
		}
	}
	// Non-monotone bounds (first two bounds swapped).
	bad := append([]byte(nil), blob...)
	copy(bad[12:20], blob[20:28])
	copy(bad[20:28], blob[12:20])
	var loaded Sharded1D
	if err := loaded.UnmarshalBinary(bad); err == nil {
		t.Fatal("swapped bounds accepted")
	}
}

func BenchmarkShardedQuerySpan(b *testing.B) {
	keys, measures := genDataset(50_000, 81)
	s, err := BuildSharded(Count, keys, measures, 8, Options{Delta: 25, NoFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := keys[100], keys[len(keys)-100]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.RangeSum(lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedQueryBatch(b *testing.B) {
	keys, measures := genDataset(50_000, 83)
	s, err := BuildSharded(Count, keys, measures, 8, Options{Delta: 1, NoFallback: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ranges := make([]Range, 512)
	for i := range ranges {
		a, c := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if a > c {
			a, c = c, a
		}
		ranges[i] = Range{Lo: a, Hi: c}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryBatch(ranges); err != nil {
			b.Fatal(err)
		}
	}
}
