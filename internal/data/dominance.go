package data

import "sort"

// DominanceCounter answers batched 2D dominance queries
// CF(u, v) = Σ { w_i : xs[i] ≤ u ∧ ys[i] ≤ v } — the two-key cumulative
// function of Definition 5 (unit weights give the COUNT surface, arbitrary
// non-negative weights give the SUM surface) — with an offline plane sweep
// over a Fenwick tree: O((n + q) log n) for q queries. The quadtree build
// issues one batch per level, so construction of the 2D PolyFit index needs
// only a handful of sweeps over the data.
type DominanceCounter struct {
	// points sorted by x
	px, py, pw []float64
	// sorted distinct y values for rank compression
	yrank []float64
}

// NewDominanceCounter prepares the sweep structures for unit weights
// (the COUNT surface); xs/ys are copied.
func NewDominanceCounter(xs, ys []float64) *DominanceCounter {
	return NewWeightedDominanceCounter(xs, ys, nil)
}

// NewWeightedDominanceCounter prepares the sweep structures with per-point
// weights (the SUM surface). ws == nil means unit weights.
func NewWeightedDominanceCounter(xs, ys, ws []float64) *DominanceCounter {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	px := make([]float64, n)
	py := make([]float64, n)
	pw := make([]float64, n)
	for i, id := range idx {
		px[i] = xs[id]
		py[i] = ys[id]
		if ws == nil {
			pw[i] = 1
		} else {
			pw[i] = ws[id]
		}
	}
	yr := append([]float64(nil), ys...)
	sort.Float64s(yr)
	// dedupe
	out := yr[:0]
	for i, v := range yr {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return &DominanceCounter{px: px, py: py, pw: pw, yrank: out}
}

// Count evaluates CF at every query point. The result is exact.
func (d *DominanceCounter) Count(qx, qy []float64) []float64 {
	q := len(qx)
	order := make([]int, q)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qx[order[a]] < qx[order[b]] })
	res := make([]float64, q)
	fen := make([]float64, len(d.yrank)+1)
	add := func(pos int, w float64) {
		for i := pos + 1; i <= len(d.yrank); i += i & (-i) {
			fen[i] += w
		}
	}
	prefix := func(pos int) float64 { // weight of inserted y with rank ≤ pos
		s := 0.0
		for i := pos + 1; i > 0; i -= i & (-i) {
			s += fen[i]
		}
		return s
	}
	pi := 0
	for _, qi := range order {
		for pi < len(d.px) && d.px[pi] <= qx[qi] {
			// rank of this y value
			r := sort.SearchFloat64s(d.yrank, d.py[pi])
			add(r, d.pw[pi])
			pi++
		}
		// weight of inserted points with y ≤ qy
		r := sort.SearchFloat64s(d.yrank, qy[qi])
		if r == len(d.yrank) || d.yrank[r] != qy[qi] {
			r-- // strictly smaller rank; -1 means none
		}
		if r >= 0 {
			res[qi] = prefix(r)
		}
	}
	return res
}

// CountOne evaluates CF at a single point (convenience; prefer Count for
// batches).
func (d *DominanceCounter) CountOne(x, y float64) float64 {
	return d.Count([]float64{x}, []float64{y})[0]
}

// Len returns the number of points.
func (d *DominanceCounter) Len() int { return len(d.px) }

// Bounds returns the data bounding box (xlo, xhi, ylo, yhi).
func (d *DominanceCounter) Bounds() (xlo, xhi, ylo, yhi float64) {
	if len(d.px) == 0 {
		return 0, 0, 0, 0
	}
	xlo, xhi = d.px[0], d.px[len(d.px)-1]
	ylo, yhi = d.yrank[0], d.yrank[len(d.yrank)-1]
	return
}
