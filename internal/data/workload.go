package data

import "math/rand"

// RangeQuery is a 1D key interval.
type RangeQuery struct {
	L, U float64
}

// RectQuery is a 2D query rectangle (two key ranges, Definition 4).
type RectQuery struct {
	XLo, XHi, YLo, YHi float64
}

// RangeQueriesFromKeys reproduces the paper's 1D workload (§VII-A): "we
// randomly choose two keys in the datasets as the start and end points of
// each query interval".
func RangeQueriesFromKeys(keys []float64, count int, seed int64) []RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]RangeQuery, count)
	for i := range qs {
		l := keys[rng.Intn(len(keys))]
		u := keys[rng.Intn(len(keys))]
		if l > u {
			l, u = u, l
		}
		qs[i] = RangeQuery{L: l, U: u}
	}
	return qs
}

// UniformRects reproduces the paper's 2D workload: "we randomly sample the
// rectangles, based on the uniform distribution" over the given domain.
func UniformRects(xlo, xhi, ylo, yhi float64, count int, seed int64) []RectQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]RectQuery, count)
	for i := range qs {
		x1 := xlo + rng.Float64()*(xhi-xlo)
		x2 := xlo + rng.Float64()*(xhi-xlo)
		y1 := ylo + rng.Float64()*(yhi-ylo)
		y2 := ylo + rng.Float64()*(yhi-ylo)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		qs[i] = RectQuery{XLo: x1, XHi: x2, YLo: y1, YHi: y2}
	}
	return qs
}
