package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestGenHKIShape(t *testing.T) {
	keys, measures := GenHKI(50000, 1)
	if len(keys) != 50000 || len(measures) != 50000 {
		t.Fatalf("wrong sizes %d/%d", len(keys), len(measures))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("timestamps not strictly increasing at %d", i)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range measures {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if lo < 20000 || hi > 38000 {
		t.Errorf("index values outside plausible band: [%g, %g]", lo, hi)
	}
	if hi-lo < 500 {
		t.Errorf("index values suspiciously flat: [%g, %g]", lo, hi)
	}
}

func TestGenHKIDeterministic(t *testing.T) {
	k1, m1 := GenHKI(1000, 42)
	k2, m2 := GenHKI(1000, 42)
	for i := range k1 {
		if k1[i] != k2[i] || m1[i] != m2[i] {
			t.Fatalf("GenHKI not deterministic at %d", i)
		}
	}
	k3, _ := GenHKI(1000, 43)
	same := 0
	for i := range k1 {
		if k1[i] == k3[i] {
			same++
		}
	}
	if same == len(k1) {
		t.Error("different seeds gave identical keys")
	}
}

func TestGenTweetShape(t *testing.T) {
	keys := GenTweet(30000, 2)
	if len(keys) != 30000 {
		t.Fatalf("wrong size %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("latitudes not strictly increasing at %d", i)
		}
	}
	if keys[0] < -60 || keys[len(keys)-1] > 75 {
		t.Errorf("latitudes outside habitable band: [%g, %g]", keys[0], keys[len(keys)-1])
	}
	// The latitude CDF must be strongly non-uniform (multi-modal): compare
	// the densest decile with the sparsest.
	counts := make([]int, 10)
	for _, k := range keys {
		b := int((k + 60) / 13.5)
		if b > 9 {
			b = 9
		}
		counts[b]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi < 3*lo {
		t.Errorf("latitude histogram too uniform: min %d max %d", lo, hi)
	}
}

func TestGenOSMShape(t *testing.T) {
	xs, ys := GenOSM(20000, 3)
	if len(xs) != 20000 || len(ys) != 20000 {
		t.Fatal("wrong sizes")
	}
	for i := range xs {
		if xs[i] < -180 || xs[i] > 180 || ys[i] < -90 || ys[i] > 90 {
			t.Fatalf("point %d outside domain: (%g, %g)", i, xs[i], ys[i])
		}
	}
	// Cluster check: a city box must be far denser than uniform.
	inNY := 0
	for i := range xs {
		if math.Abs(xs[i]+74) < 3 && math.Abs(ys[i]-40.7) < 3 {
			inNY++
		}
	}
	uniformExpect := float64(len(xs)) * (6.0 * 6.0) / (360 * 180)
	if float64(inNY) < 5*uniformExpect {
		t.Errorf("NY box holds %d points, expected clustering ≫ uniform %g", inNY, uniformExpect)
	}
}

func TestGenOSMLatKeys(t *testing.T) {
	keys := GenOSMLatKeys(5000, 4)
	if len(keys) == 0 {
		t.Fatal("no keys")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly increasing at %d", i)
		}
	}
}

func TestRangeQueriesFromKeys(t *testing.T) {
	keys := GenTweet(1000, 5)
	qs := RangeQueriesFromKeys(keys, 200, 6)
	if len(qs) != 200 {
		t.Fatalf("want 200 queries, got %d", len(qs))
	}
	keySet := make(map[float64]bool, len(keys))
	for _, k := range keys {
		keySet[k] = true
	}
	for _, q := range qs {
		if q.L > q.U {
			t.Fatalf("inverted query %+v", q)
		}
		if !keySet[q.L] || !keySet[q.U] {
			t.Fatalf("query endpoints must be dataset keys: %+v", q)
		}
	}
}

func TestUniformRects(t *testing.T) {
	qs := UniformRects(-180, 180, -90, 90, 300, 7)
	for _, q := range qs {
		if q.XLo > q.XHi || q.YLo > q.YHi {
			t.Fatalf("malformed rect %+v", q)
		}
		if q.XLo < -180 || q.XHi > 180 || q.YLo < -90 || q.YHi > 90 {
			t.Fatalf("rect outside domain %+v", q)
		}
	}
}

func bruteDominance(xs, ys []float64, qx, qy float64) float64 {
	c := 0.0
	for i := range xs {
		if xs[i] <= qx && ys[i] <= qy {
			c++
		}
	}
	return c
}

func TestDominanceCounterAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 3000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
		ys[i] = rng.NormFloat64() * 10
	}
	// Inject duplicates to stress rank compression.
	for i := 0; i < 100; i++ {
		xs[i] = xs[i+100]
		ys[i] = ys[i+200]
	}
	dc := NewDominanceCounter(xs, ys)
	if dc.Len() != n {
		t.Fatalf("Len = %d", dc.Len())
	}
	q := 400
	qx := make([]float64, q)
	qy := make([]float64, q)
	for i := range qx {
		if i%3 == 0 { // exact data coordinates
			j := rng.Intn(n)
			qx[i], qy[i] = xs[j], ys[j]
		} else {
			qx[i] = rng.NormFloat64() * 12
			qy[i] = rng.NormFloat64() * 12
		}
	}
	got := dc.Count(qx, qy)
	for i := range qx {
		want := bruteDominance(xs, ys, qx[i], qy[i])
		if got[i] != want {
			t.Fatalf("CF(%g,%g) = %g, want %g", qx[i], qy[i], got[i], want)
		}
	}
}

func TestDominanceCounterExtremes(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{3, 2, 1}
	dc := NewDominanceCounter(xs, ys)
	if got := dc.CountOne(0, 0); got != 0 {
		t.Errorf("below-all = %g, want 0", got)
	}
	if got := dc.CountOne(10, 10); got != 3 {
		t.Errorf("above-all = %g, want 3", got)
	}
	if got := dc.CountOne(2, 2); got != 1 {
		t.Errorf("CF(2,2) = %g, want 1", got)
	}
	xlo, xhi, ylo, yhi := dc.Bounds()
	if xlo != 1 || xhi != 3 || ylo != 1 || yhi != 3 {
		t.Errorf("Bounds = (%g,%g,%g,%g)", xlo, xhi, ylo, yhi)
	}
}

func TestCSV1DRoundTrip(t *testing.T) {
	keys := []float64{1.5, 2.25, 99}
	measures := []float64{10, 20, 30}
	var buf bytes.Buffer
	if err := WriteCSV1D(&buf, keys, measures); err != nil {
		t.Fatal(err)
	}
	k2, m2, err := ReadCSV1D(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(k2) != 3 {
		t.Fatalf("got %d rows", len(k2))
	}
	for i := range keys {
		if k2[i] != keys[i] || m2[i] != measures[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestCSVHeaderlessAndErrors(t *testing.T) {
	k, m, err := ReadCSV1D(bytes.NewBufferString("1,2\n3,4\n"))
	if err != nil || len(k) != 2 || m[1] != 4 {
		t.Fatalf("headerless parse failed: %v %v %v", k, m, err)
	}
	if _, _, err := ReadCSV1D(bytes.NewBufferString("key,measure\n1\n")); err == nil {
		t.Error("short row should error")
	}
	if _, _, err := ReadCSV1D(bytes.NewBufferString("1,2\nx,y\n")); err == nil {
		t.Error("bad number after first line should error")
	}
}

func BenchmarkDominanceBatch(b *testing.B) {
	xs, ys := GenOSM(100000, 1)
	dc := NewDominanceCounter(xs, ys)
	qx := make([]float64, 10000)
	qy := make([]float64, 10000)
	rng := rand.New(rand.NewSource(2))
	for i := range qx {
		qx[i] = -180 + rng.Float64()*360
		qy[i] = -90 + rng.Float64()*180
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Count(qx, qy)
	}
}
