// Package data provides the synthetic stand-ins for the paper's three real
// datasets (Table III), deterministic query-workload generators matching
// Section VII-A, the offline dominance counter used to evaluate the 2D
// cumulative function during index construction, and CSV import/export for
// the command-line tools.
//
// The real HKI / TWEET / OSM datasets are not redistributable, so each
// generator reproduces the statistical property the corresponding experiment
// exercises; DESIGN.md §1.5 documents the substitutions.
package data

import (
	"math"
	"math/rand"
	"sort"
)

// Record1D is a (key, measure) pair — the paper's 1D data model (§III-A).
type Record1D struct {
	Key     float64
	Measure float64
}

// Point2D is a (key1, key2) pair for the two-key setting of Section VI.
type Point2D struct {
	X, Y float64
}

// GenHKI synthesises a stock-index tick series: strictly increasing
// timestamps and an index level made of multi-frequency macro swings (the
// smooth year-scale shape visible in the paper's Figure 5) plus a Brownian
// tick texture whose total volatility is fixed — per-tick σ scales as 1/√n,
// exactly how real intraday samples of a yearly series behave. The series
// stays in the Hang-Seng-like 25000–33000 band. Stand-in for the HKI
// dataset (0.9M records, key=timestamp, measure=index value; MAX queries).
func GenHKI(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	keys = make([]float64, n)
	measures = make([]float64, n)
	// Macro components: amplitudes/frequencies chosen so a year view shows
	// two to three major swings with finer ripples.
	type wave struct{ amp, freq, phase float64 }
	waves := []wave{
		{2200, 1.0 + rng.Float64()*0.4, rng.Float64() * 2 * math.Pi},
		{500, 2.0 + rng.Float64()*0.6, rng.Float64() * 2 * math.Pi},
		{120, 6.0 + rng.Float64()*2.0, rng.Float64() * 2 * math.Pi},
	}
	const yearVol = 400.0
	tickSigma := yearVol / math.Sqrt(float64(n))
	ts := 0.0
	walk := 0.0
	for i := 0; i < n; i++ {
		ts += 1 + rng.Float64()*2 // irregular tick spacing
		keys[i] = ts
		u := float64(i) / float64(n)
		level := 29000.0
		for _, w := range waves {
			level += w.amp * math.Sin(2*math.Pi*w.freq*u+w.phase)
		}
		walk += rng.NormFloat64() * tickSigma
		// Soft reflection keeps the walk component bounded.
		if walk > 1000 {
			walk = 1000 - (walk-1000)*0.5
		}
		if walk < -1000 {
			walk = -1000 + (-1000-walk)*0.5
		}
		// Non-accumulating microstructure noise (bid-ask bounce): this is
		// what makes per-tick DFmax genuinely hard to fit (Figure 14b's
		// segment counts) without disturbing the smooth year-scale shape.
		micro := rng.NormFloat64() * 25
		measures[i] = level + walk + micro
	}
	return keys, measures
}

// GenTweet synthesises tweet latitudes: a population-weighted mixture of
// Gaussians centred at major population-belt latitudes plus uniform noise,
// deduplicated to strictly increasing keys. It stands in for the TWEET
// dataset (1M records, key=latitude) used for 1D COUNT queries.
func GenTweet(n int, seed int64) (keys []float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := []struct{ lat, weight, sd float64 }{
		{40.7, 0.16, 2.5},  // NE US
		{34.0, 0.12, 2.0},  // southern US
		{51.5, 0.10, 1.5},  // UK / NW Europe
		{48.8, 0.08, 2.0},  // central Europe
		{35.7, 0.10, 1.8},  // Japan
		{22.3, 0.07, 1.5},  // HK / S China
		{28.6, 0.08, 3.0},  // N India
		{-23.5, 0.07, 2.2}, // Brazil
		{-33.9, 0.05, 1.8}, // Argentina / S Africa
		{19.4, 0.06, 1.6},  // Mexico
		{1.35, 0.04, 1.0},  // Singapore / equator belt
		{-37.8, 0.04, 1.2}, // SE Australia
	}
	totalW := 0.0
	for _, c := range centers {
		totalW += c.weight
	}
	uniformW := 1 - totalW
	set := make(map[float64]bool, n)
	for len(set) < n {
		u := rng.Float64()
		var lat float64
		if u < uniformW {
			lat = -60 + rng.Float64()*135 // habitable band
		} else {
			u -= uniformW
			for _, c := range centers {
				if u < c.weight {
					lat = c.lat + rng.NormFloat64()*c.sd
					break
				}
				u -= c.weight
			}
		}
		if lat < -60 || lat > 75 {
			continue
		}
		// Quantise to ~1e-5 degrees, then force uniqueness.
		lat = math.Round(lat*1e5) / 1e5
		set[lat] = true
	}
	keys = make([]float64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

// GenOSM synthesises OpenStreetMap-like coordinates: clustered city hotspots
// over a uniform background across the whole lon/lat domain. It stands in
// for the OSM dataset (100M records; our default scale is set by the
// harness) used for 2D COUNT queries. Points are not deduplicated — the 2D
// cumulative function tolerates ties.
func GenOSM(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	type city struct{ lon, lat, sd, weight float64 }
	cities := []city{
		{-74.0, 40.7, 1.2, 0.07}, {-0.1, 51.5, 1.0, 0.06},
		{2.35, 48.85, 1.0, 0.05}, {139.7, 35.7, 1.1, 0.06},
		{114.2, 22.3, 0.8, 0.04}, {77.2, 28.6, 1.5, 0.05},
		{-43.2, -22.9, 1.0, 0.04}, {151.2, -33.9, 0.9, 0.03},
		{-99.1, 19.4, 1.2, 0.04}, {37.6, 55.75, 1.3, 0.04},
		{-122.4, 37.8, 1.0, 0.04}, {103.8, 1.35, 0.7, 0.03},
		{13.4, 52.5, 0.9, 0.03}, {28.0, -26.2, 1.1, 0.02},
	}
	totalW := 0.0
	for _, c := range cities {
		totalW += c.weight
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		if u >= totalW { // uniform background
			xs[i] = -180 + rng.Float64()*360
			ys[i] = -90 + rng.Float64()*180
			continue
		}
		for _, c := range cities {
			if u < c.weight {
				xs[i] = clamp(c.lon+rng.NormFloat64()*c.sd, -180, 180)
				ys[i] = clamp(c.lat+rng.NormFloat64()*c.sd, -90, 90)
				break
			}
			u -= c.weight
		}
	}
	return xs, ys
}

// GenOSMLatKeys extracts a strictly-increasing latitude key set of size ≤ n
// from GenOSM output, matching the paper's Figure 18 setup ("using latitude
// attribute as single key").
func GenOSMLatKeys(n int, seed int64) []float64 {
	_, ys := GenOSM(n+n/4, seed)
	set := make(map[float64]bool, n)
	for _, y := range ys {
		set[math.Round(y*1e7)/1e7] = true
		if len(set) == n {
			break
		}
	}
	keys := make([]float64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
