package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV1D writes (key, measure) records as a two-column CSV with header.
func WriteCSV1D(w io.Writer, keys, measures []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("key,measure\n"); err != nil {
		return err
	}
	for i := range keys {
		if _, err := fmt.Fprintf(bw, "%v,%v\n", keys[i], measures[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV1D parses a two-column CSV (with or without a header row) into
// parallel key/measure slices.
func ReadCSV1D(r io.Reader) (keys, measures []float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 2 {
			return nil, nil, fmt.Errorf("data: line %d: want 2 columns, got %d", line, len(parts))
		}
		k, errK := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		m, errM := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if errK != nil || errM != nil {
			if line == 1 {
				continue // header row
			}
			return nil, nil, fmt.Errorf("data: line %d: bad number", line)
		}
		keys = append(keys, k)
		measures = append(measures, m)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return keys, measures, nil
}

// WriteCSV2D writes (x, y) points as CSV.
func WriteCSV2D(w io.Writer, xs, ys []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("x,y\n"); err != nil {
		return err
	}
	for i := range xs {
		if _, err := fmt.Fprintf(bw, "%v,%v\n", xs[i], ys[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV2D parses a two-column CSV of points.
func ReadCSV2D(r io.Reader) (xs, ys []float64, err error) {
	return ReadCSV1D(r) // identical format, different column meaning
}
