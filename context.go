package polyfit

import "context"

// ContextQuerier is implemented by every index polyfit.New builds: the
// Query/QueryRel/QueryBatch surface with context propagation. Deadline
// semantics are best-effort abandonment at natural boundaries, never
// mid-computation:
//
//   - Sharded variants check ctx between shards of a scatter-gather (and
//     inside the parallel fan-out, before each shard's work starts), so a
//     query touching many shards stops paying for shards it no longer
//     needs.
//   - Unsharded variants answer point queries in well under a microsecond,
//     so they only check ctx up front; batches additionally check between
//     chunks of batchCtxChunk ranges.
//
// A cut-short call reports ctx.Err() (context.DeadlineExceeded or
// context.Canceled) and never a partial Result. A nil-error answer from a
// context method is bit-identical to what the plain method would have
// returned.
type ContextQuerier interface {
	QueryContext(ctx context.Context, r Range) (Result, error)
	QueryRelContext(ctx context.Context, r Range, epsRel float64) (Result, error)
	QueryBatchContext(ctx context.Context, ranges []Range) ([]Result, error)
}

// Generational is implemented by the insert-supporting variants. The
// generation is a monotonic mutation counter: it moves on every successful
// Insert and Rebuild, so two reads observing the same generation saw the
// same data. Serving layers key caches and request coalescing on it —
// invalidation is structural, not time-based. Static indexes are immutable
// and have no generation (treat them as a constant 0).
type Generational interface {
	Generation() uint64
}

var (
	_ ContextQuerier = (*staticIndex)(nil)
	_ ContextQuerier = (*dynamicIndex)(nil)
	_ ContextQuerier = (*shardedIndex)(nil)
	_ ContextQuerier = (*shardedDynamicIndex)(nil)
	_ Generational   = (*dynamicIndex)(nil)
	_ Generational   = (*shardedDynamicIndex)(nil)
)

// batchCtxChunk is how many ranges an unsharded batch answers between
// context checks: large enough that the check cost vanishes against the
// per-range work, small enough that a deadline cuts a million-range batch
// off within tens of microseconds.
const batchCtxChunk = 1024

// chunkedBatchCtx runs q over ranges in batchCtxChunk slices with a ctx
// check before each. Per-range answers are independent, so the
// concatenation is exactly the unchunked result.
func chunkedBatchCtx(ctx context.Context, ranges []Range, q func([]Range) ([]Result, error)) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(ranges) <= batchCtxChunk {
		return q(ranges)
	}
	out := make([]Result, 0, len(ranges))
	for start := 0; start < len(ranges); start += batchCtxChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := min(start+batchCtxChunk, len(ranges))
		part, err := q(ranges[start:end])
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// --- static ----------------------------------------------------------------

func (ix *staticIndex) QueryContext(ctx context.Context, r Range) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return ix.Query(r)
}

func (ix *staticIndex) QueryRelContext(ctx context.Context, r Range, epsRel float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return ix.QueryRel(r, epsRel)
}

func (ix *staticIndex) QueryBatchContext(ctx context.Context, ranges []Range) ([]Result, error) {
	return chunkedBatchCtx(ctx, ranges, ix.QueryBatch)
}

// --- dynamic ---------------------------------------------------------------

func (ix *dynamicIndex) QueryContext(ctx context.Context, r Range) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return ix.Query(r)
}

func (ix *dynamicIndex) QueryRelContext(ctx context.Context, r Range, epsRel float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return ix.QueryRel(r, epsRel)
}

func (ix *dynamicIndex) QueryBatchContext(ctx context.Context, ranges []Range) ([]Result, error) {
	return chunkedBatchCtx(ctx, ranges, ix.QueryBatch)
}

// Generation reports the dynamic index's mutation counter (see
// Generational).
func (ix *dynamicIndex) Generation() uint64 { return ix.inner.Generation() }

// --- sharded (both layouts, via the shared adapter) -------------------------

func (s shardedQueries) QueryContext(ctx context.Context, r Range) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	switch s.c.Aggregate() {
	case Count, Sum:
		v, bound, err := s.c.RangeSumCtx(ctx, r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: true, Bound: bound}, nil
	default:
		v, bound, ok, err := s.c.RangeExtremumCtx(ctx, r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: ok, Bound: bound}, nil
	}
}

func (s shardedQueries) QueryRelContext(ctx context.Context, r Range, epsRel float64) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	switch s.c.Aggregate() {
	case Count, Sum:
		v, bound, exact, err := s.c.RangeSumRelCtx(ctx, r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: true, Bound: bound}, nil
	default:
		v, bound, exact, ok, err := s.c.RangeExtremumRelCtx(ctx, r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: ok, Bound: bound}, nil
	}
}

func (s shardedQueries) QueryBatchContext(ctx context.Context, ranges []Range) ([]Result, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	br, err := s.c.QueryBatchCtx(ctx, ranges)
	if err != nil {
		return nil, err
	}
	return batchResults(s.c.Aggregate(), s.c.Delta(), ranges, br, func(r Range) int {
		return s.c.ShardsTouched(r.Lo, r.Hi)
	}), nil
}

// Generation reports the summed per-shard mutation counter (see
// Generational).
func (ix *shardedDynamicIndex) Generation() uint64 { return ix.inner.Generation() }
