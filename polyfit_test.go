package polyfit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestOptionsValidation(t *testing.T) {
	keys := data.GenTweet(500, 1)
	if _, err := NewCountIndex(keys, Options{}); err != ErrBadOptions {
		t.Errorf("zero options should yield ErrBadOptions, got %v", err)
	}
	if _, err := NewCountIndex(nil, Options{EpsAbs: 10}); err == nil {
		t.Error("empty keys should error")
	}
}

func TestCountIndexEndToEnd(t *testing.T) {
	keys := data.GenTweet(5000, 2)
	const eps = 50.0
	ix, err := NewCountIndex(keys, Options{EpsAbs: eps})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Aggregate != Count || st.Records != 5000 || st.Segments < 1 {
		t.Fatalf("bad stats: %+v", st)
	}
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
	qs := data.RangeQueriesFromKeys(keys, 400, 3)
	for _, q := range qs {
		got, found, err := ix.Query(q.L, q.U)
		if err != nil || !found {
			t.Fatalf("Query error: %v found=%v", err, found)
		}
		want := 0.0
		for _, k := range keys {
			if k > q.L && k <= q.U {
				want++
			}
		}
		if math.Abs(got-want) > eps+1e-9 {
			t.Fatalf("|%g − %g| > εabs for %+v", got, want, q)
		}
	}
}

func TestSumIndexEndToEnd(t *testing.T) {
	keys, measures := data.GenHKI(4000, 4)
	ix, err := NewSumIndex(keys, measures, Options{EpsAbs: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.RangeQueriesFromKeys(keys, 200, 5)
	for _, q := range qs {
		got, _, err := ix.Query(q.L, q.U)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for i, k := range keys {
			if k > q.L && k <= q.U {
				want += measures[i]
			}
		}
		if math.Abs(got-want) > 1e5+1e-6 {
			t.Fatalf("SUM |%g − %g| > εabs", got, want)
		}
	}
}

func TestMaxMinIndexEndToEnd(t *testing.T) {
	keys, measures := data.GenHKI(4000, 6)
	mx, err := NewMaxIndex(keys, measures, Options{EpsAbs: 100})
	if err != nil {
		t.Fatal(err)
	}
	mn, err := NewMinIndex(keys, measures, Options{EpsAbs: 100})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.RangeQueriesFromKeys(keys, 200, 7)
	for _, q := range qs {
		gotMax, foundMax, err := mx.Query(q.L, q.U)
		if err != nil {
			t.Fatal(err)
		}
		gotMin, foundMin, err := mn.Query(q.L, q.U)
		if err != nil {
			t.Fatal(err)
		}
		wantMax, wantMin := math.Inf(-1), math.Inf(1)
		any := false
		for i, k := range keys {
			if k >= q.L && k <= q.U {
				any = true
				wantMax = math.Max(wantMax, measures[i])
				wantMin = math.Min(wantMin, measures[i])
			}
		}
		if !any {
			continue
		}
		if !foundMax || !foundMin {
			t.Fatalf("non-empty range reported empty")
		}
		if gotMax < wantMax-100-1e-6 || gotMax > wantMax+250 {
			t.Fatalf("MAX %g vs %g outside envelope", gotMax, wantMax)
		}
		if gotMin > wantMin+100+1e-6 || gotMin < wantMin-250 {
			t.Fatalf("MIN %g vs %g outside envelope", gotMin, wantMin)
		}
	}
}

func TestQueryRelCertified(t *testing.T) {
	// δ=5 keeps the Lemma 3 gate 2δ(1+1/εrel) = 1010 well below the dataset
	// cardinality so wide queries exercise the approximate path.
	keys := data.GenTweet(6000, 8)
	ix, err := NewCountIndex(keys, Options{Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	qs := data.RangeQueriesFromKeys(keys, 300, 9)
	approx := 0
	for _, q := range qs {
		res, err := ix.QueryRel(q.L, q.U, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, k := range keys {
			if k > q.L && k <= q.U {
				want++
			}
		}
		if res.Exact {
			if res.Value != want {
				t.Fatalf("exact path wrong: %g vs %g", res.Value, want)
			}
			continue
		}
		approx++
		if want == 0 || math.Abs(res.Value-want)/want > 0.01+1e-9 {
			t.Fatalf("relative error violated: %g vs %g", res.Value, want)
		}
	}
	if approx == 0 {
		t.Fatal("approximate path never used")
	}
}

func TestDisableFallback(t *testing.T) {
	keys := data.GenTweet(1000, 10)
	ix, err := NewCountIndex(keys, Options{EpsAbs: 20, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().FallbackBytes != 0 {
		t.Error("fallback bytes should be 0")
	}
	if _, err := ix.QueryRel(keys[0], keys[1], 1e-12); err != ErrNoFallback {
		t.Errorf("want ErrNoFallback, got %v", err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	keys := data.GenTweet(3000, 11)
	orig, err := NewCountIndex(keys, Options{EpsAbs: 40})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded StaticIndex
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	qs := data.RangeQueriesFromKeys(keys, 100, 12)
	for _, q := range qs {
		a, _, _ := orig.Query(q.L, q.U)
		b, _, err := loaded.Query(q.L, q.U)
		if err != nil || a != b {
			t.Fatalf("round-trip divergence: %g vs %g (%v)", a, b, err)
		}
	}
}

func TestIndex2DEndToEnd(t *testing.T) {
	xs, ys := data.GenOSM(5000, 13)
	ix, err := NewCount2DIndex(xs, ys, Options2D{EpsAbs: 200})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Records != 5000 || st.Leaves < 1 || st.Depth < 1 {
		t.Fatalf("bad 2D stats: %+v", st)
	}
	qs := data.UniformRects(-180, 180, -90, 90, 200, 14)
	bad := 0
	for _, q := range qs {
		got, found, err := ix.Query(q.XLo, q.XHi, q.YLo, q.YHi)
		if err != nil || !found {
			t.Fatalf("Query(%+v): found=%v err=%v", q, found, err)
		}
		want := 0.0
		for i := range xs {
			if xs[i] > q.XLo && xs[i] <= q.XHi && ys[i] > q.YLo && ys[i] <= q.YHi {
				want++
			}
		}
		if math.Abs(got-want) > 200+1e-6 {
			bad++
		}
	}
	if bad > len(qs)/20 {
		t.Fatalf("%d/%d 2D queries outside εabs", bad, len(qs))
	}
	// Relative path.
	res, err := ix.QueryRel(-180, 180, -90, 90, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-5000) > 0.05*5000+1 {
		t.Errorf("whole-domain relative query %g, want ≈5000", res.Value)
	}
	// Round-trip.
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Index2D
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[:50] {
		a, _, _ := ix.Query(q.XLo, q.XHi, q.YLo, q.YHi)
		b, _, _ := loaded.Query(q.XLo, q.XHi, q.YLo, q.YHi)
		if a != b {
			t.Fatalf("2D round-trip divergence: %g vs %g", a, b)
		}
	}
}

func TestIndex2DQueryValidation(t *testing.T) {
	xs, ys := data.GenOSM(2000, 16)
	ix, err := NewCount2DIndex(xs, ys, Options2D{EpsAbs: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Inverted rectangles are empty: 0 with found=true, like the 1D COUNT.
	if v, found, err := ix.Query(10, -10, 0, 5); v != 0 || !found || err != nil {
		t.Errorf("inverted rectangle: (%g, %v, %v), want (0, true, nil)", v, found, err)
	}
	// NaN coordinates are caller bugs; reject instead of answering garbage.
	nan := math.NaN()
	for _, r := range [][4]float64{{nan, 10, 0, 5}, {0, nan, 0, 5}, {0, 10, nan, 5}, {0, 10, 0, nan}} {
		if _, found, err := ix.Query(r[0], r[1], r[2], r[3]); err == nil || found {
			t.Errorf("Query(%v) accepted a NaN rectangle", r)
		}
		if _, err := ix.QueryRel(r[0], r[1], r[2], r[3], 0.05); err == nil {
			t.Errorf("QueryRel(%v) accepted a NaN rectangle", r)
		}
	}
}

func TestIndex2DOptionsValidation(t *testing.T) {
	xs, ys := data.GenOSM(100, 15)
	if _, err := NewCount2DIndex(xs, ys, Options2D{}); err != ErrBadOptions {
		t.Errorf("zero options should yield ErrBadOptions, got %v", err)
	}
	if _, err := NewCount2DIndex(nil, nil, Options2D{EpsAbs: 10}); err == nil {
		t.Error("empty points should error")
	}
}

func TestCompressionHeadline(t *testing.T) {
	// The headline claim: the index is far smaller than the data.
	keys := data.GenTweet(50000, 16)
	ix, err := NewCountIndex(keys, Options{EpsAbs: 100, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	raw := 8 * len(keys)
	if st.IndexBytes*10 > raw {
		t.Errorf("index %dB not ≤ 10%% of raw %dB (segments=%d)", st.IndexBytes, raw, st.Segments)
	}
	t.Logf("compression: %d keys (%d B) → %d segments (%d B)", len(keys), raw, st.Segments, st.IndexBytes)
}

func BenchmarkPublicQueryCount(b *testing.B) {
	keys := data.GenTweet(100000, 1)
	ix, err := NewCountIndex(keys, Options{EpsAbs: 100})
	if err != nil {
		b.Fatal(err)
	}
	qs := data.RangeQueriesFromKeys(keys, 1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i&1023]
		ix.Query(q.L, q.U) //nolint:errcheck
	}
}

var sinkRand = rand.New(rand.NewSource(1)) // referenced to keep math/rand imported for future benches
