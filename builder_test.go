package polyfit_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	polyfit "repro"
)

// builderDataset builds n distinct, irregularly spaced keys with positive
// measures (positive so the SUM relative-error lemma applies).
func builderDataset(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	keys = make([]float64, n)
	measures = make([]float64, n)
	k := 0.0
	for i := range keys {
		k += 0.25 + rng.Float64()*3
		keys[i] = k
		measures[i] = 1 + rng.Float64()*9
	}
	return keys, measures
}

func bruteSum(keys, measures []float64, lo, hi float64) float64 {
	s := 0.0
	for i, k := range keys {
		if k > lo && k <= hi {
			s += measures[i]
		}
	}
	return s
}

func bruteMax(keys, measures []float64, lo, hi float64) (float64, bool) {
	best, found := math.Inf(-1), false
	for i, k := range keys {
		if k >= lo && k <= hi && measures[i] > best {
			best, found = measures[i], true
		}
	}
	return best, found
}

// layoutOptions enumerates the four layouts the builder can produce.
func layoutOptions() map[string][]polyfit.Option {
	return map[string][]polyfit.Option{
		"static":          nil,
		"dynamic":         {polyfit.WithDynamic()},
		"sharded":         {polyfit.WithShards(5)},
		"sharded-dynamic": {polyfit.WithDynamic(), polyfit.WithShards(5)},
	}
}

// TestBuilderBoundOracle is the oracle check behind the redesign's promise:
// Result.Bound is populated on EVERY variant — static and dynamic included,
// not just sharded — and the observed error never exceeds it, for Query,
// QueryRel, and QueryBatch alike (SUM two-sided at workload endpoints; MAX
// on the covering side, per DESIGN.md §3.3).
func TestBuilderBoundOracle(t *testing.T) {
	keys, measures := builderDataset(4000, 99)
	rng := rand.New(rand.NewSource(100))
	for layout, extra := range layoutOptions() {
		sum, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures},
			append([]polyfit.Option{polyfit.WithMaxError(50)}, extra...)...)
		if err != nil {
			t.Fatalf("%s sum: %v", layout, err)
		}
		mx, err := polyfit.New(polyfit.Spec{Agg: polyfit.Max, Keys: keys, Measures: measures},
			append([]polyfit.Option{polyfit.WithMaxError(4)}, extra...)...)
		if err != nil {
			t.Fatalf("%s max: %v", layout, err)
		}
		var ranges []polyfit.Range
		for q := 0; q < 300; q++ {
			i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
			if i > j {
				i, j = j, i
			}
			ranges = append(ranges, polyfit.Range{Lo: keys[i], Hi: keys[j]})
		}
		sumBatch, err := sum.QueryBatch(ranges)
		if err != nil {
			t.Fatal(err)
		}
		maxBatch, err := mx.QueryBatch(ranges)
		if err != nil {
			t.Fatal(err)
		}
		for qi, r := range ranges {
			exact := bruteSum(keys, measures, r.Lo, r.Hi)
			res, err := sum.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bound <= 0 {
				t.Fatalf("%s sum Query(%v): Bound %g not populated", layout, r, res.Bound)
			}
			tol := 1e-9 * (1 + math.Abs(exact))
			if e := math.Abs(res.Value - exact); e > res.Bound+tol {
				t.Fatalf("%s sum (%g,%g]: est %g exact %g exceeds bound %g", layout, r.Lo, r.Hi, res.Value, exact, res.Bound)
			}
			if b := sumBatch[qi]; b.Bound < res.Bound-tol || math.Abs(b.Value-exact) > b.Bound+tol {
				t.Fatalf("%s sum batch (%g,%g]: %+v vs single %+v (exact %g)", layout, r.Lo, r.Hi, b, res, exact)
			}
			rel, err := sum.QueryRel(r, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if rel.Exact && rel.Bound != 0 {
				t.Fatalf("%s sum QueryRel exact path: Bound %g, want 0", layout, rel.Bound)
			}
			if !rel.Exact && rel.Bound <= 0 {
				t.Fatalf("%s sum QueryRel approx path: Bound %g not populated", layout, rel.Bound)
			}
			if math.Abs(rel.Value-exact) > rel.Bound+0.01*exact+tol {
				t.Fatalf("%s sum QueryRel (%g,%g]: est %g exact %g bound %g", layout, r.Lo, r.Hi, rel.Value, exact, rel.Bound)
			}

			// MAX: covering side — the index must not miss the true extremum
			// by more than the bound.
			eMax, found := bruteMax(keys, measures, r.Lo, r.Hi)
			mres, err := mx.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			if mres.Bound <= 0 {
				t.Fatalf("%s max Query(%v): Bound %g not populated", layout, r, mres.Bound)
			}
			if found && mres.Found && mres.Value < eMax-mres.Bound-tol {
				t.Fatalf("%s max [%g,%g]: est %g misses exact %g beyond bound %g", layout, r.Lo, r.Hi, mres.Value, eMax, mres.Bound)
			}
			if mb := maxBatch[qi]; mb.Found && found && mb.Value < eMax-mb.Bound-tol {
				t.Fatalf("%s max batch [%g,%g]: %+v misses exact %g", layout, r.Lo, r.Hi, mb, eMax)
			}
		}
		// Empty COUNT/SUM ranges answer exactly 0 with Bound 0.
		res, err := sum.Query(polyfit.Range{Lo: 10, Hi: 5})
		if err != nil || res.Value != 0 || res.Bound != 0 {
			t.Fatalf("%s sum empty range: %+v (%v), want value 0 bound 0", layout, res, err)
		}
	}
}

// TestQueryRelBoundSymmetry pins the satellite fix: static and dynamic
// QueryRel populate Result.Bound exactly like the sharded variants — the
// δ-derived guarantee on the approximate path, 0 on the exact path — on
// both the v1 wrappers and the Index interface.
func TestQueryRelBoundSymmetry(t *testing.T) {
	keys, _ := builderDataset(3000, 7)
	// Small enough that the Lemma 3 gate A ≥ 2δ(1+1/εrel) passes on the
	// wide range below (A ≈ 2900 ≫ 8·101).
	const eps = 8.0
	st, err := polyfit.NewCountIndex(keys, polyfit.Options{EpsAbs: eps})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := polyfit.NewDynamicCountIndex(keys, polyfit.Options{EpsAbs: eps})
	if err != nil {
		t.Fatal(err)
	}
	wide := [2]float64{keys[10], keys[2900]} // approximate gate passes
	tiny := [2]float64{keys[0] - 2, keys[0] - 1}
	for name, q := range map[string]func(lo, hi, e float64) (polyfit.Result, error){
		"static":  st.QueryRel,
		"dynamic": dyn.QueryRel,
	} {
		res, err := q(wide[0], wide[1], 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact {
			t.Fatalf("%s: wide range unexpectedly took the exact path", name)
		}
		if res.Bound != eps { // 2δ = εabs for COUNT
			t.Errorf("%s approximate QueryRel: Bound %g, want %g", name, res.Bound, eps)
		}
		res, err = q(tiny[0], tiny[1], 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("%s: empty range did not take the exact path", name)
		}
		if res.Bound != 0 {
			t.Errorf("%s exact QueryRel: Bound %g, want 0", name, res.Bound)
		}
	}
}

// TestSentinelErrors drives errors.Is for every sentinel from every
// constructor and query path.
func TestSentinelErrors(t *testing.T) {
	keys, measures := builderDataset(500, 3)
	spec := polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures}

	for layout, extra := range layoutOptions() {
		// ErrBadOptions: no error budget (identity-preserved for v1 callers).
		if _, err := polyfit.New(spec, extra...); !errors.Is(err, polyfit.ErrBadOptions) {
			t.Errorf("%s: no-eps build: got %v, want ErrBadOptions", layout, err)
		}
		opts := append([]polyfit.Option{polyfit.WithMaxError(10)}, extra...)
		// ErrEmptyKeys.
		if _, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count}, opts...); !errors.Is(err, polyfit.ErrEmptyKeys) {
			t.Errorf("%s: empty build: got %v, want ErrEmptyKeys", layout, err)
		}
		// ErrUnsortedKeys.
		bad := polyfit.Spec{Agg: polyfit.Count, Keys: []float64{3, 1, 2}}
		if _, err := polyfit.New(bad, opts...); !errors.Is(err, polyfit.ErrUnsortedKeys) {
			t.Errorf("%s: unsorted build: got %v, want ErrUnsortedKeys", layout, err)
		}
		ix, err := polyfit.New(spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// ErrInvalidRange: NaN endpoints on every query entry point, and a
		// non-positive relative error.
		nan := polyfit.Range{Lo: math.NaN(), Hi: 10}
		if _, err := ix.Query(nan); !errors.Is(err, polyfit.ErrInvalidRange) {
			t.Errorf("%s: NaN Query: got %v, want ErrInvalidRange", layout, err)
		}
		if _, err := ix.QueryRel(nan, 0.01); !errors.Is(err, polyfit.ErrInvalidRange) {
			t.Errorf("%s: NaN QueryRel: got %v, want ErrInvalidRange", layout, err)
		}
		if _, err := ix.QueryBatch([]polyfit.Range{{Lo: 1, Hi: 2}, nan}); !errors.Is(err, polyfit.ErrInvalidRange) {
			t.Errorf("%s: NaN QueryBatch: got %v, want ErrInvalidRange", layout, err)
		}
		if _, err := ix.QueryRel(polyfit.Range{Lo: 1, Hi: 2}, 0); !errors.Is(err, polyfit.ErrInvalidRange) {
			t.Errorf("%s: epsRel=0: got %v, want ErrInvalidRange", layout, err)
		}
		// ErrNoFallback: a fallback-free index whose gate cannot certify.
		bare, err := polyfit.New(spec, append(opts, polyfit.WithFallback(false))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bare.QueryRel(polyfit.Range{Lo: keys[0] - 3, Hi: keys[0] - 2}, 0.01); !errors.Is(err, polyfit.ErrNoFallback) {
			t.Errorf("%s: gate miss without fallback: got %v, want ErrNoFallback", layout, err)
		}
		// ErrDuplicateKey on insertable layouts.
		if ins, ok := ix.(polyfit.Inserter); ok {
			if err := ins.Insert(keys[5], 1); !errors.Is(err, polyfit.ErrDuplicateKey) {
				t.Errorf("%s: duplicate insert: got %v, want ErrDuplicateKey", layout, err)
			}
		}
	}

	// The v1 wrappers share the adapters' NaN validation (same surface,
	// same behavior) and WithDegree ignores non-positive values per the
	// Option contract.
	v1, err := polyfit.NewCountIndex(keys, polyfit.Options{EpsAbs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v1.Query(math.NaN(), 50); !errors.Is(err, polyfit.ErrInvalidRange) {
		t.Errorf("v1 NaN Query: got %v, want ErrInvalidRange", err)
	}
	if _, err := v1.QueryBatch([]polyfit.Range{{Lo: math.NaN(), Hi: 1}}); !errors.Is(err, polyfit.ErrInvalidRange) {
		t.Errorf("v1 NaN QueryBatch: got %v, want ErrInvalidRange", err)
	}
	sh1, err := polyfit.NewSharded(polyfit.Count, keys, nil, polyfit.ShardOptions{Options: polyfit.Options{EpsAbs: 10}, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh1.QueryWithBound(math.NaN(), 50); !errors.Is(err, polyfit.ErrInvalidRange) {
		t.Errorf("v1 sharded NaN QueryWithBound: got %v, want ErrInvalidRange", err)
	}
	if _, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: keys},
		polyfit.WithMaxError(10), polyfit.WithDegree(-3)); err != nil {
		t.Errorf("WithDegree(-3) should be a no-op, got %v", err)
	}

	// ErrAggMismatch from an unknown aggregate in the spec.
	if _, err := polyfit.New(polyfit.Spec{Agg: polyfit.Agg(9), Keys: keys}, polyfit.WithMaxError(1)); !errors.Is(err, polyfit.ErrAggMismatch) {
		t.Errorf("unknown aggregate: got %v, want ErrAggMismatch", err)
	}
	// ErrBadOptions identity for v1 callers (compared with ==, not only Is).
	if _, err := polyfit.NewCountIndex(keys, polyfit.Options{}); err != polyfit.ErrBadOptions {
		t.Errorf("v1 no-eps build: got %v, want ErrBadOptions (identity)", err)
	}
	// 2D: NaN rectangles and non-positive epsRel wrap ErrInvalidRange; the
	// bound mirrors Lemma 6 (4δ = εabs).
	ix2, err := polyfit.NewCount2DIndex(keys, measures, polyfit.Options2D{EpsAbs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix2.Query(math.NaN(), 1, 0, 1); !errors.Is(err, polyfit.ErrInvalidRange) {
		t.Errorf("2D NaN Query: got %v, want ErrInvalidRange", err)
	}
	if _, err := ix2.QueryRel(0, 1, 0, 1, -1); !errors.Is(err, polyfit.ErrInvalidRange) {
		t.Errorf("2D epsRel<0: got %v, want ErrInvalidRange", err)
	}
	if res, err := ix2.QueryWithBound(keys[0], keys[400], measures[0]-1, measures[0]+100); err != nil || res.Bound != 40 {
		t.Errorf("2D QueryWithBound: bound %g (%v), want 40 (= 4δ = εabs)", res.Bound, err)
	}
}

// TestBuilderLayoutCapabilities pins which capabilities each layout
// exposes, and that v1 constructors produce the same indexes as the builder
// (delegation, not duplication).
func TestBuilderLayoutCapabilities(t *testing.T) {
	keys, measures := builderDataset(2000, 17)
	ix, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures},
		polyfit.WithMaxError(25), polyfit.WithDynamic(), polyfit.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := ix.(polyfit.ShardSnapshotter)
	if !ok {
		t.Fatal("sharded dynamic build lost ShardSnapshotter")
	}
	if sh.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sh.NumShards())
	}
	if got := len(sh.ShardStats()); got != 4 {
		t.Fatalf("ShardStats rows = %d, want 4", got)
	}
	if st := ix.Stats(); st.Shards != 4 || st.Records != len(keys) {
		t.Fatalf("Stats = %+v, want 4 shards over %d records", st, len(keys))
	}
	// The v1 wrapper and the builder must produce bitwise-identical answers
	// for the same configuration (the wrapper delegates to the builder).
	v1, err := polyfit.NewSumIndex(keys, measures, polyfit.Options{EpsAbs: 25})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := polyfit.New(polyfit.Spec{Agg: polyfit.Sum, Keys: keys, Measures: measures}, polyfit.WithMaxError(25))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		lo, hi := keys[q], keys[len(keys)-1-q]
		a, _, _ := v1.Query(lo, hi)
		b, err := v2.Query(polyfit.Range{Lo: lo, Hi: hi})
		if err != nil || math.Float64bits(a) != math.Float64bits(b.Value) {
			t.Fatalf("v1 vs builder divergence at (%g,%g]: %g vs %g (%v)", lo, hi, a, b.Value, err)
		}
	}
}
