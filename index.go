package polyfit

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
)

// Range is one query interval. COUNT/SUM indexes use the paper's half-open
// (Lo, Hi] semantics (Equation 5), MIN/MAX the closed [Lo, Hi].
type Range = core.Range

// Result carries a certified query answer. Every query path of every index
// variant — static, dynamic, sharded, sharded dynamic, and two-key —
// returns one, so the paper's headline deterministic error guarantee is
// available uniformly, not only on particular layouts.
type Result struct {
	Value float64
	// Exact reports whether the exact fallback produced the value (the
	// approximate gate of Lemma 3/5/7 failed on a relative-error query).
	Exact bool
	// Found is false when a MIN/MAX range contains no records.
	Found bool
	// Bound is the certified absolute error bound on Value: 0 for exact
	// answers (empty COUNT/SUM ranges included), 2δ for COUNT/SUM and δ for
	// MIN/MAX approximate answers (Lemmas 2 and 4), the additively composed
	// 2δ·m for a sharded COUNT/SUM range touching m shards (sharded MIN/MAX
	// stays δ — extremum error does not accumulate across shards), and 4δ
	// for two-key COUNT/SUM rectangles (Lemma 6).
	Bound float64
}

// Index is the uniform contract of every one-key PolyFit index. polyfit.New
// constructs all variants behind it — the layout (static, dynamic, sharded)
// is configuration, not a type — and polyfit.Open restores any serialised
// one. Additional capabilities are discoverable via type assertion:
// insert-supporting variants implement Inserter, range-partitioned ones
// Sharder, and sharded dynamic ones ShardSnapshotter.
type Index interface {
	// Query answers the approximate range aggregate with the build-time
	// absolute guarantee, reported per answer in Result.Bound. NaN endpoints
	// are rejected with ErrInvalidRange.
	Query(r Range) (Result, error)
	// QueryRel answers within the relative error epsRel (Problem 2): either
	// the approximate gate certifies the bound, or the exact fallback
	// answers (Result.Exact true, Result.Bound 0).
	QueryRel(r Range, epsRel float64) (Result, error)
	// QueryBatch answers many ranges in one call through the amortised batch
	// path; results are returned in input order, each with its own Bound.
	QueryBatch(ranges []Range) ([]Result, error)
	// Stats returns structural information about the index.
	Stats() Stats
	// MarshalBinary serialises the index; polyfit.Open restores it.
	MarshalBinary() ([]byte, error)
}

// Inserter is implemented by the insert-supporting (dynamic) variants.
type Inserter interface {
	// Insert adds a (key, measure) record; duplicate keys are rejected with
	// ErrDuplicateKey. COUNT indexes ignore the measure.
	Insert(key, measure float64) error
	// Rebuild forces an immediate merge of the delta buffer into the base;
	// concurrent queries keep answering from the previous snapshot.
	Rebuild() error
	// BufferLen returns the number of not-yet-merged inserts.
	BufferLen() int
}

// Sharder is implemented by the range-partitioned variants.
type Sharder interface {
	// NumShards returns the shard count K.
	NumShards() int
	// ShardOf returns the shard index owning key k.
	ShardOf(k float64) int
	// Bounds returns a copy of the K−1 routing boundaries.
	Bounds() []float64
	// ShardStats reports each shard's structure, in shard order.
	ShardStats() []Stats
}

// ShardSnapshotter is implemented by sharded dynamic indexes, whose shards
// can be persisted and rebuilt independently — the unit of the serving
// layer's per-shard durability.
type ShardSnapshotter interface {
	Sharder
	// MarshalShard serialises shard i alone as a dynamic blob.
	MarshalShard(i int) ([]byte, error)
	// RebuildShard merge-rebuilds shard i alone; the other shards' queries
	// and inserts proceed undisturbed.
	RebuildShard(i int) error
}

// validateRanges rejects NaN endpoints up front: they would otherwise route
// arbitrarily through the segment (and shard) search and silently produce a
// garbage answer with a meaningless bound.
func validateRanges(ranges ...Range) error {
	for _, r := range ranges {
		if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) {
			return fmt.Errorf("%w: NaN range endpoint (%g, %g)", ErrInvalidRange, r.Lo, r.Hi)
		}
	}
	return nil
}

// sumBound is the absolute error bound of an unsharded approximate
// COUNT/SUM answer over r: 2δ (Lemma 2), or 0 for an empty (inverted)
// range, whose answer is exactly 0.
func sumBound(delta float64, r Range) float64 {
	if r.Hi < r.Lo {
		return 0
	}
	return 2 * delta
}

// approxBound is the absolute error bound of an unsharded relative-error
// answer: 2δ for COUNT/SUM, δ for MIN/MAX, 0 when the exact fallback
// answered.
func approxBound(agg Agg, delta float64, exact bool) float64 {
	if exact {
		return 0
	}
	if agg == Count || agg == Sum {
		return 2 * delta
	}
	return delta
}

// batchResults lifts core batch answers into uniform Results. shardsOf, when
// non-nil, reports how many shards a range touched (the m of the composed
// COUNT/SUM bound); unsharded variants pass nil for m = 1.
func batchResults(agg Agg, delta float64, ranges []Range, br []core.BatchResult, shardsOf func(Range) int) []Result {
	out := make([]Result, len(br))
	for i, b := range br {
		res := Result{Value: b.Value, Found: b.Found}
		switch agg {
		case Count, Sum:
			if ranges[i].Hi >= ranges[i].Lo {
				m := 1
				if shardsOf != nil {
					m = shardsOf(ranges[i])
				}
				res.Bound = 2 * delta * float64(m)
			}
		default:
			res.Bound = delta
		}
		out[i] = res
	}
	return out
}

// --- static ----------------------------------------------------------------

type staticIndex struct{ inner *core.Index1D }

func (ix *staticIndex) Query(r Range) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	switch ix.inner.Aggregate() {
	case Count, Sum:
		v, err := ix.inner.RangeSum(r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: true, Bound: sumBound(ix.inner.Delta(), r)}, nil
	default:
		v, ok, err := ix.inner.RangeExtremum(r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: ok, Bound: ix.inner.Delta()}, nil
	}
}

func (ix *staticIndex) QueryRel(r Range, epsRel float64) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	agg, delta := ix.inner.Aggregate(), ix.inner.Delta()
	switch agg {
	case Count, Sum:
		v, exact, err := ix.inner.RangeSumRel(r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: true, Bound: approxBound(agg, delta, exact)}, nil
	default:
		v, exact, ok, err := ix.inner.RangeExtremumRel(r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: ok, Bound: approxBound(agg, delta, exact)}, nil
	}
}

func (ix *staticIndex) QueryBatch(ranges []Range) ([]Result, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	br, err := ix.inner.QueryBatch(ranges)
	if err != nil {
		return nil, err
	}
	return batchResults(ix.inner.Aggregate(), ix.inner.Delta(), ranges, br, nil), nil
}

func (ix *staticIndex) Stats() Stats                   { return stats1D(ix.inner) }
func (ix *staticIndex) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

// --- dynamic ---------------------------------------------------------------

type dynamicIndex struct{ inner *core.Dynamic1D }

func (ix *dynamicIndex) Query(r Range) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	delta := ix.inner.Base().Delta()
	switch ix.inner.Aggregate() {
	case Count, Sum:
		v, err := ix.inner.RangeSum(r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: true, Bound: sumBound(delta, r)}, nil
	default:
		v, ok, err := ix.inner.RangeExtremum(r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: ok, Bound: delta}, nil
	}
}

func (ix *dynamicIndex) QueryRel(r Range, epsRel float64) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	agg, delta := ix.inner.Aggregate(), ix.inner.Base().Delta()
	switch agg {
	case Count, Sum:
		v, exact, err := ix.inner.RangeSumRel(r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: true, Bound: approxBound(agg, delta, exact)}, nil
	default:
		v, exact, ok, err := ix.inner.RangeExtremumRel(r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: ok, Bound: approxBound(agg, delta, exact)}, nil
	}
}

func (ix *dynamicIndex) QueryBatch(ranges []Range) ([]Result, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	br, err := ix.inner.QueryBatch(ranges)
	if err != nil {
		return nil, err
	}
	return batchResults(ix.inner.Aggregate(), ix.inner.Base().Delta(), ranges, br, nil), nil
}

func (ix *dynamicIndex) Stats() Stats                   { return statsDynamic(ix.inner) }
func (ix *dynamicIndex) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

func (ix *dynamicIndex) Insert(key, measure float64) error { return ix.inner.Insert(key, measure) }
func (ix *dynamicIndex) Rebuild() error                    { return ix.inner.Rebuild() }
func (ix *dynamicIndex) BufferLen() int                    { return ix.inner.BufferLen() }

// --- sharded ---------------------------------------------------------------

// shardedCore is the query surface the shared sharded adapter needs; both
// *core.Sharded1D and *core.ShardedDynamic1D satisfy it (the methods come
// from the one shardSet scatter-gather engine plus the per-type Rel paths).
type shardedCore interface {
	Aggregate() Agg
	Delta() float64
	RangeSum(lq, uq float64) (val, bound float64, err error)
	RangeExtremum(lq, uq float64) (val, bound float64, ok bool, err error)
	RangeSumRel(lq, uq, epsRel float64) (val, bound float64, usedExact bool, err error)
	RangeExtremumRel(lq, uq, epsRel float64) (val, bound float64, usedExact, ok bool, err error)
	QueryBatch(ranges []Range) ([]core.BatchResult, error)
	ShardsTouched(lq, uq float64) int
	// Context-honoring variants: the scatter-gather abandons untouched
	// shards when ctx expires (see ContextQuerier).
	RangeSumCtx(ctx context.Context, lq, uq float64) (val, bound float64, err error)
	RangeExtremumCtx(ctx context.Context, lq, uq float64) (val, bound float64, ok bool, err error)
	RangeSumRelCtx(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, usedExact bool, err error)
	RangeExtremumRelCtx(ctx context.Context, lq, uq, epsRel float64) (val, bound float64, usedExact, ok bool, err error)
	QueryBatchCtx(ctx context.Context, ranges []Range) ([]core.BatchResult, error)
}

// shardedQueries is the Query/QueryRel/QueryBatch adapter shared by the
// static and dynamic sharded Index implementations, so a validation or
// bound fix can never apply to one layout and silently miss the other.
type shardedQueries struct{ c shardedCore }

func (s shardedQueries) Query(r Range) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	switch s.c.Aggregate() {
	case Count, Sum:
		// The core engine already answers inverted ranges as exactly 0 with
		// bound 0, so the result passes through unadjusted.
		v, bound, err := s.c.RangeSum(r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: true, Bound: bound}, nil
	default:
		v, bound, ok, err := s.c.RangeExtremum(r.Lo, r.Hi)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Found: ok, Bound: bound}, nil
	}
}

func (s shardedQueries) QueryRel(r Range, epsRel float64) (Result, error) {
	if err := validateRanges(r); err != nil {
		return Result{}, err
	}
	switch s.c.Aggregate() {
	case Count, Sum:
		v, bound, exact, err := s.c.RangeSumRel(r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: true, Bound: bound}, nil
	default:
		v, bound, exact, ok, err := s.c.RangeExtremumRel(r.Lo, r.Hi, epsRel)
		if err != nil {
			return Result{}, err
		}
		return Result{Value: v, Exact: exact, Found: ok, Bound: bound}, nil
	}
}

func (s shardedQueries) QueryBatch(ranges []Range) ([]Result, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	br, err := s.c.QueryBatch(ranges)
	if err != nil {
		return nil, err
	}
	return batchResults(s.c.Aggregate(), s.c.Delta(), ranges, br, func(r Range) int {
		return s.c.ShardsTouched(r.Lo, r.Hi)
	}), nil
}

type shardedIndex struct {
	shardedQueries
	inner *core.Sharded1D
}

func newShardedIndex(inner *core.Sharded1D) *shardedIndex {
	return &shardedIndex{shardedQueries: shardedQueries{c: inner}, inner: inner}
}

func (ix *shardedIndex) Stats() Stats                   { return statsSharded(ix.inner) }
func (ix *shardedIndex) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

func (ix *shardedIndex) NumShards() int        { return ix.inner.NumShards() }
func (ix *shardedIndex) ShardOf(k float64) int { return ix.inner.ShardOf(k) }
func (ix *shardedIndex) Bounds() []float64     { return ix.inner.Bounds() }
func (ix *shardedIndex) ShardStats() []Stats   { return shardStatsStatic(ix.inner) }

// --- sharded dynamic -------------------------------------------------------

type shardedDynamicIndex struct {
	shardedQueries
	inner *core.ShardedDynamic1D
}

func newShardedDynamicIndex(inner *core.ShardedDynamic1D) *shardedDynamicIndex {
	return &shardedDynamicIndex{shardedQueries: shardedQueries{c: inner}, inner: inner}
}

func (ix *shardedDynamicIndex) Stats() Stats                   { return statsShardedDynamic(ix.inner) }
func (ix *shardedDynamicIndex) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

func (ix *shardedDynamicIndex) Insert(key, measure float64) error {
	return ix.inner.Insert(key, measure)
}
func (ix *shardedDynamicIndex) Rebuild() error { return ix.inner.Rebuild() }
func (ix *shardedDynamicIndex) BufferLen() int { return ix.inner.BufferLen() }

func (ix *shardedDynamicIndex) NumShards() int        { return ix.inner.NumShards() }
func (ix *shardedDynamicIndex) ShardOf(k float64) int { return ix.inner.ShardOf(k) }
func (ix *shardedDynamicIndex) Bounds() []float64     { return ix.inner.Bounds() }
func (ix *shardedDynamicIndex) ShardStats() []Stats   { return shardStatsDynamic(ix.inner) }

func (ix *shardedDynamicIndex) MarshalShard(i int) ([]byte, error) { return ix.inner.MarshalShard(i) }
func (ix *shardedDynamicIndex) RebuildShard(i int) error           { return ix.inner.RebuildShard(i) }
