package polyfit

import (
	"repro/internal/core"
)

// ShardOptions configures a v1 sharded index build: the usual build Options
// plus the shard count.
//
// Deprecated: use polyfit.New with WithShards(k).
type ShardOptions struct {
	Options
	// Shards is the number of range partitions K. Keys are split into K
	// contiguous chunks of near-equal count, one PolyFit index per chunk.
	// Values ≤ 1 build a single shard; the count is clamped to the record
	// count (and an internal ceiling of 4096).
	Shards int
}

// ShardedIndex is a range-partitioned PolyFit index: K static shards over
// disjoint key ranges, queried scatter-gather — a range is split at the
// shard boundaries, the overlapping shards answer in parallel, and the
// partial aggregates are merged (COUNT/SUM add, MIN/MAX combine).
//
// The absolute-error guarantee composes additively for COUNT/SUM: a range
// touching m shards is answered within 2δ·m, and that composed bound is
// reported in Result.Bound by QueryWithBound. MIN/MAX answers stay within
// the single δ regardless of how many shards the range spans.
//
// ShardedIndex is immutable after construction and safe for concurrent
// readers. See ShardedDynamic for the insertable variant.
//
// Deprecated: build with polyfit.New(spec, polyfit.WithShards(k)) and use
// the Index interface plus the Sharder capability.
type ShardedIndex struct {
	inner *core.Sharded1D
}

// NewSharded builds a sharded index of the given aggregate over (key,
// measure) records (measures may be nil for Count). Shards build
// concurrently; each shard is an ordinary PolyFit index over its chunk.
//
// Deprecated: use polyfit.New with WithShards(k).
func NewSharded(agg Agg, keys, measures []float64, opt ShardOptions) (*ShardedIndex, error) {
	ix, err := New(Spec{Agg: agg, Keys: keys, Measures: measures},
		opt.options(WithShards(max(opt.Shards, 1)))...)
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{inner: ix.(*shardedIndex).inner}, nil
}

// Query answers the approximate range aggregate (COUNT/SUM over (lq, uq],
// MIN/MAX over [lq, uq]) with the same shape as StaticIndex.Query. Use
// QueryWithBound to also receive the composed error bound.
func (ix *ShardedIndex) Query(lq, uq float64) (value float64, found bool, err error) {
	res, err := ix.QueryWithBound(lq, uq)
	return res.Value, res.Found, err
}

// QueryWithBound answers the approximate range aggregate and reports the
// certified absolute error bound in Result.Bound: 2δ·m for a COUNT/SUM
// range touching m shards, δ for MIN/MAX. NaN endpoints are rejected with
// ErrInvalidRange, exactly as on the Index interface.
func (ix *ShardedIndex) QueryWithBound(lq, uq float64) (Result, error) {
	return newShardedIndex(ix.inner).Query(Range{Lo: lq, Hi: uq})
}

// QueryRel answers within the relative error epsRel (Problem 2). The
// certification gate runs against the composed bound; when it fails, the
// per-shard exact fallbacks answer (every touched shard must carry one, so
// indexes built with DisableFallback return ErrNoFallback).
func (ix *ShardedIndex) QueryRel(lq, uq, epsRel float64) (Result, error) {
	return newShardedIndex(ix.inner).QueryRel(Range{Lo: lq, Hi: uq}, epsRel)
}

// QueryBatch answers many ranges in one call: each range is routed only to
// the shards it overlaps and the per-shard sub-batches run in parallel
// through the amortised batch path. Results are returned in input order.
func (ix *ShardedIndex) QueryBatch(ranges []Range) ([]BatchResult, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	return ix.inner.QueryBatch(ranges)
}

// NumShards returns the shard count K.
func (ix *ShardedIndex) NumShards() int { return ix.inner.NumShards() }

// Bounds returns a copy of the K−1 routing boundaries splitting the key
// space between shards.
func (ix *ShardedIndex) Bounds() []float64 { return ix.inner.Bounds() }

// Stats summarises the whole sharded index; per-shard structure is
// available from ShardStats.
func (ix *ShardedIndex) Stats() Stats { return statsSharded(ix.inner) }

// ShardStats reports each shard's structure, in shard order.
func (ix *ShardedIndex) ShardStats() []Stats { return shardStatsStatic(ix.inner) }

// MarshalBinary serialises the sharded index as a container of static shard
// blobs (fallbacks excluded, as for StaticIndex.MarshalBinary).
func (ix *ShardedIndex) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

// UnmarshalBinary loads a serialised sharded index. Corrupt containers —
// truncated shards, tampered shard directories, mismatched shard counts —
// are rejected with an error wrapping ErrCorruptBlob, never a panic.
//
// Deprecated: use polyfit.Open.
func (ix *ShardedIndex) UnmarshalBinary(data []byte) error {
	inner := &core.Sharded1D{}
	if err := inner.UnmarshalBinary(data); err != nil {
		return err
	}
	ix.inner = inner
	return nil
}

// ShardedDynamic is the insertable sharded index: K DynamicIndex-style
// shards over disjoint key ranges. Inserts route to the shard owning the
// key and take only that shard's lock, so writers to different shards
// never contend; a merge-rebuild re-fits one shard's chunk while queries
// to every shard — including the rebuilding one — keep answering from
// lock-free snapshots. The error guarantees and their composition are as
// for ShardedIndex (delta-buffer contributions are exact).
//
// Deprecated: build with polyfit.New(spec, polyfit.WithDynamic(),
// polyfit.WithShards(k)) and use the Index interface plus the Inserter and
// ShardSnapshotter capabilities.
type ShardedDynamic struct {
	inner *core.ShardedDynamic1D
}

// NewShardedDynamic builds an insertable sharded index of the given
// aggregate (measures may be nil for Count).
//
// Deprecated: use polyfit.New with WithDynamic() and WithShards(k).
func NewShardedDynamic(agg Agg, keys, measures []float64, opt ShardOptions) (*ShardedDynamic, error) {
	ix, err := New(Spec{Agg: agg, Keys: keys, Measures: measures},
		opt.options(WithDynamic(), WithShards(max(opt.Shards, 1)))...)
	if err != nil {
		return nil, err
	}
	return &ShardedDynamic{inner: ix.(*shardedDynamicIndex).inner}, nil
}

// Insert adds a (key, measure) record to the shard owning the key;
// duplicate keys are rejected. Only the owning shard's lock is taken.
func (d *ShardedDynamic) Insert(key, measure float64) error { return d.inner.Insert(key, measure) }

// Query answers the approximate aggregate (see ShardedIndex.Query).
func (d *ShardedDynamic) Query(lq, uq float64) (value float64, found bool, err error) {
	res, err := d.QueryWithBound(lq, uq)
	return res.Value, res.Found, err
}

// QueryWithBound answers the approximate aggregate and reports the
// composed absolute error bound in Result.Bound (see
// ShardedIndex.QueryWithBound).
func (d *ShardedDynamic) QueryWithBound(lq, uq float64) (Result, error) {
	return newShardedDynamicIndex(d.inner).Query(Range{Lo: lq, Hi: uq})
}

// QueryRel answers within the relative error epsRel (see
// ShardedIndex.QueryRel); buffered inserts participate exactly in both the
// gate and the fallback.
func (d *ShardedDynamic) QueryRel(lq, uq, epsRel float64) (Result, error) {
	return newShardedDynamicIndex(d.inner).QueryRel(Range{Lo: lq, Hi: uq}, epsRel)
}

// QueryBatch answers many ranges in one call, routing each range only to
// the shards it overlaps; each shard's sub-batch reads one consistent
// snapshot of that shard.
func (d *ShardedDynamic) QueryBatch(ranges []Range) ([]BatchResult, error) {
	if err := validateRanges(ranges...); err != nil {
		return nil, err
	}
	return d.inner.QueryBatch(ranges)
}

// Rebuild forces a merge-rebuild of every shard (concurrently); queries
// keep answering throughout. RebuildShard rebuilds one shard only.
func (d *ShardedDynamic) Rebuild() error { return d.inner.Rebuild() }

// RebuildShard forces a merge-rebuild of shard i alone; the other shards'
// queries and inserts proceed undisturbed.
func (d *ShardedDynamic) RebuildShard(i int) error { return d.inner.RebuildShard(i) }

// NumShards returns the shard count K.
func (d *ShardedDynamic) NumShards() int { return d.inner.NumShards() }

// ShardOf returns the shard index that owns key k — the shard an Insert of
// k routes to.
func (d *ShardedDynamic) ShardOf(k float64) int { return d.inner.ShardOf(k) }

// Bounds returns a copy of the K−1 routing boundaries.
func (d *ShardedDynamic) Bounds() []float64 { return d.inner.Bounds() }

// Len returns the total record count across shards (bases + buffers).
func (d *ShardedDynamic) Len() int { return d.inner.Len() }

// BufferLen returns the total not-yet-merged insert count across shards.
func (d *ShardedDynamic) BufferLen() int { return d.inner.BufferLen() }

// Stats summarises the whole sharded index from per-shard snapshots.
func (d *ShardedDynamic) Stats() Stats { return statsShardedDynamic(d.inner) }

// ShardStats reports each shard's structure, in shard order; each entry
// reads one consistent snapshot of its shard.
func (d *ShardedDynamic) ShardStats() []Stats { return shardStatsDynamic(d.inner) }

// MarshalBinary serialises the complete sharded dynamic state as a
// container of dynamic shard blobs: each shard round-trips exactly as
// DynamicIndex.MarshalBinary does (options, raw data, delta buffer,
// fitted base). Marshalling never blocks concurrent writers.
func (d *ShardedDynamic) MarshalBinary() ([]byte, error) { return d.inner.MarshalBinary() }

// MarshalShard serialises shard i alone as a dynamic blob — the unit of
// the serving layer's per-shard snapshots.
func (d *ShardedDynamic) MarshalShard(i int) ([]byte, error) { return d.inner.MarshalShard(i) }

// UnmarshalBinary restores a sharded dynamic index from a MarshalBinary
// blob; every shard restores without re-fitting and the restored index is
// fully operational. Corrupt containers are rejected with an error
// wrapping ErrCorruptBlob, never a panic.
//
// Deprecated: use polyfit.Open.
func (d *ShardedDynamic) UnmarshalBinary(data []byte) error {
	inner, err := core.RestoreShardedDynamic(data)
	if err != nil {
		return err
	}
	d.inner = inner
	return nil
}

// AssembleShardedDynamic reconstitutes a sharded dynamic index from
// independently recovered per-shard dynamic blobs and the routing bounds —
// the serving layer's per-shard recovery path. The shards must agree on
// aggregate and δ and hold key ranges consistent with the bounds.
//
// Deprecated: use polyfit.Assemble, which returns the Index interface.
func AssembleShardedDynamic(bounds []float64, shardBlobs [][]byte) (*ShardedDynamic, error) {
	inner, err := assembleShards(bounds, shardBlobs)
	if err != nil {
		return nil, err
	}
	return &ShardedDynamic{inner: inner}, nil
}
