package polyfit

import (
	"fmt"

	"repro/internal/core"
)

// BlobKind identifies which index type produced a serialised blob.
type BlobKind = core.BlobKind

// Blob kinds distinguishable from a serialised blob's magic bytes.
const (
	BlobUnknown        = core.BlobUnknown
	BlobStatic1D       = core.BlobStatic1D       // static one-key index ("POL1")
	BlobStatic2D       = core.BlobStatic2D       // two-key index ("POL2")
	BlobDynamic        = core.BlobDynamic        // dynamic index ("POLD")
	BlobShardedStatic  = core.BlobShardedStatic  // sharded container of static shards ("POLS")
	BlobShardedDynamic = core.BlobShardedDynamic // sharded container of dynamic shards ("POLS")
)

// DetectBlob sniffs the magic bytes of a serialised index so callers can
// dispatch without trial decoding. Open does this internally; DetectBlob is
// for callers that need to route before deserialising (e.g. to reject 2D
// blobs up front).
func DetectBlob(data []byte) BlobKind { return core.DetectBlob(data) }

// Open restores any serialised one-key index behind the uniform Index
// interface, sniffing the blob kind (static POL1, dynamic POLD, sharded
// POLS) and returning the matching implementation — dynamic blobs come back
// insertable (Inserter), sharded ones range-partitioned (Sharder). It
// replaces the per-type UnmarshalBinary dance of the v1 API.
//
// Corrupt, truncated, or internally inconsistent blobs are rejected with an
// error wrapping ErrCorruptBlob; Open never panics on garbage input. Blobs
// of a two-key index are refused with a pointer to Open2D (the rectangle
// query contract does not fit Index) — that error wraps ErrAggMismatch, so
// it stays classifiable without being mistaken for corruption.
func Open(data []byte) (Index, error) {
	switch core.DetectBlob(data) {
	case core.BlobStatic1D:
		inner := &core.Index1D{}
		if err := inner.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return &staticIndex{inner: inner}, nil
	case core.BlobDynamic:
		inner, err := core.RestoreDynamic(data)
		if err != nil {
			return nil, err
		}
		return &dynamicIndex{inner: inner}, nil
	case core.BlobShardedStatic:
		inner := &core.Sharded1D{}
		if err := inner.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return newShardedIndex(inner), nil
	case core.BlobShardedDynamic:
		inner, err := core.RestoreShardedDynamic(data)
		if err != nil {
			return nil, err
		}
		return newShardedDynamicIndex(inner), nil
	case core.BlobStatic2D:
		return nil, fmt.Errorf("%w: blob holds a two-key index (use Open2D)", ErrAggMismatch)
	default:
		return nil, fmt.Errorf("%w: unrecognized blob magic", ErrCorruptBlob)
	}
}

// Open2D restores a serialised two-key index (Index2D.MarshalBinary).
// Corrupt blobs are rejected with an error wrapping ErrCorruptBlob.
func Open2D(data []byte) (*Index2D, error) {
	inner := &core.Index2D{}
	if err := inner.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &Index2D{inner: inner}, nil
}

// Assemble reconstitutes a sharded dynamic index from independently
// recovered per-shard dynamic blobs (ShardSnapshotter.MarshalShard) and the
// routing bounds — the serving layer's per-shard recovery path. The shards
// must agree on aggregate and δ and hold key ranges consistent with the
// bounds; violations are rejected with an error wrapping ErrCorruptBlob.
func Assemble(bounds []float64, shardBlobs [][]byte) (Index, error) {
	inner, err := assembleShards(bounds, shardBlobs)
	if err != nil {
		return nil, err
	}
	return newShardedDynamicIndex(inner), nil
}

func assembleShards(bounds []float64, shardBlobs [][]byte) (*core.ShardedDynamic1D, error) {
	shards := make([]*core.Dynamic1D, len(shardBlobs))
	for i, blob := range shardBlobs {
		sh, err := core.RestoreDynamic(blob)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards[i] = sh
	}
	return core.AssembleShardedDynamic(bounds, shards)
}
