package polyfit

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Index2D is a PolyFit index over two keys (Section VI of the paper),
// answering approximate rectangle COUNT (or weighted SUM) queries from a
// quadtree of fitted cumulative surfaces. Its query contract mirrors the
// one-key Index interface — QueryWithBound and QueryRel return the uniform
// Result with the certified absolute bound (4δ per Lemma 6, 0 on the exact
// path) — adapted to rectangle arguments.
type Index2D struct {
	inner *core.Index2D
}

// Options2D configures a two-key index build.
type Options2D struct {
	// EpsAbs is the absolute guarantee; the build uses δ = εabs/4 (Lemma 6).
	EpsAbs float64
	// Delta overrides δ directly (the paper uses δ=250 for Problem 2).
	Delta float64
	// Degree of the fitted surfaces (default 2).
	Degree int
	// DisableFallback skips the exact aR-tree used by QueryRel.
	DisableFallback bool
	// Parallelism is the number of goroutines used for the per-cell surface
	// fits during construction; values ≤ 1 build serially. The built index
	// is identical for every worker count.
	Parallelism int
}

// NewCount2DIndex builds a two-key COUNT index over points (xs[i], ys[i]).
func NewCount2DIndex(xs, ys []float64, opt Options2D) (*Index2D, error) {
	d, err := opt.delta()
	if err != nil {
		return nil, err
	}
	inner, err := core.BuildCount2D(xs, ys, core.Options2D{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index2D{inner: inner}, nil
}

// NewSum2DIndex builds a two-key SUM index over weighted points — the
// Section VI extension to other aggregate types. Weights must be
// non-negative for QueryRel's guarantee.
func NewSum2DIndex(xs, ys, weights []float64, opt Options2D) (*Index2D, error) {
	d, err := opt.delta()
	if err != nil {
		return nil, err
	}
	inner, err := core.BuildSum2D(xs, ys, weights, core.Options2D{
		Degree: opt.Degree, Delta: d, NoFallback: opt.DisableFallback,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index2D{inner: inner}, nil
}

func (o Options2D) delta() (float64, error) {
	if o.Delta > 0 {
		return o.Delta, nil
	}
	if o.EpsAbs > 0 {
		return core.Delta2DForAbs(o.EpsAbs), nil
	}
	return 0, ErrBadOptions
}

// Query answers the approximate COUNT/SUM over the half-open rectangle
// (xlo, xhi] × (ylo, yhi], mirroring the 1D Query contract: an empty
// (inverted) rectangle answers 0 with found=true, and rectangles with NaN
// coordinates are rejected with ErrInvalidRange. Use QueryWithBound to
// also receive the certified error bound.
func (ix *Index2D) Query(xlo, xhi, ylo, yhi float64) (value float64, found bool, err error) {
	res, err := ix.QueryWithBound(xlo, xhi, ylo, yhi)
	return res.Value, res.Found, err
}

// QueryWithBound answers the approximate rectangle aggregate and reports
// the certified absolute error bound in Result.Bound: 4δ (Lemma 6 — the
// four-corner identity evaluates the fitted surface four times, each within
// δ), or 0 for an empty rectangle, whose answer is exactly 0.
func (ix *Index2D) QueryWithBound(xlo, xhi, ylo, yhi float64) (Result, error) {
	if err := validateRect(xlo, xhi, ylo, yhi); err != nil {
		return Result{}, err
	}
	bound := 4 * ix.inner.Delta()
	if xhi < xlo || yhi < ylo {
		bound = 0
	}
	return Result{Value: ix.inner.RangeCount(xlo, xhi, ylo, yhi), Found: true, Bound: bound}, nil
}

// QueryRel answers within relative error epsRel (Lemma 7 gate with exact
// aR-tree fallback). Rectangle validation matches Query; Result.Bound is
// 4δ for certified approximate answers and 0 when the exact path answered.
func (ix *Index2D) QueryRel(xlo, xhi, ylo, yhi, epsRel float64) (Result, error) {
	if err := validateRect(xlo, xhi, ylo, yhi); err != nil {
		return Result{}, err
	}
	v, exact, err := ix.inner.RangeCountRel(xlo, xhi, ylo, yhi, epsRel)
	if err != nil {
		return Result{}, err
	}
	bound := 4 * ix.inner.Delta()
	if exact {
		bound = 0
	}
	return Result{Value: v, Exact: exact, Found: true, Bound: bound}, nil
}

func validateRect(xlo, xhi, ylo, yhi float64) error {
	if math.IsNaN(xlo) || math.IsNaN(xhi) || math.IsNaN(ylo) || math.IsNaN(yhi) {
		return fmt.Errorf("%w: NaN rectangle coordinate (%g, %g, %g, %g)", ErrInvalidRange, xlo, xhi, ylo, yhi)
	}
	return nil
}

// Stats2D summarises a two-key index, mirroring the 1D Stats fields where
// they apply: Leaves plays the role of Segments, the domain rectangle the
// role of KeyLo/KeyHi (the quadtree has no learned root, so there is no
// RootBytes analogue).
type Stats2D struct {
	Records       int
	Leaves        int // fitted surfaces (the 2D analogue of Segments)
	Depth         int
	Delta         float64
	IndexBytes    int
	FallbackBytes int // exact aR-tree for QueryRel (0 if disabled)
	// ForcedLeaves counts leaves that could not reach δ before the depth
	// cap (0 in healthy builds).
	ForcedLeaves int
	// The indexed domain rectangle — the 2D analogue of KeyLo/KeyHi.
	XLo, XHi float64
	YLo, YHi float64
}

// Stats returns structural information about the index.
func (ix *Index2D) Stats() Stats2D {
	xlo, xhi, ylo, yhi := ix.inner.Bounds()
	return Stats2D{
		Records:       ix.inner.Len(),
		Leaves:        ix.inner.NumLeaves(),
		Depth:         ix.inner.Depth(),
		Delta:         ix.inner.Delta(),
		IndexBytes:    ix.inner.SizeBytes(),
		FallbackBytes: ix.inner.FallbackSizeBytes(),
		ForcedLeaves:  ix.inner.ForcedLeaves(),
		XLo:           xlo,
		XHi:           xhi,
		YLo:           ylo,
		YHi:           yhi,
	}
}

// MarshalBinary serialises the quadtree structure (without the exact
// fallback); polyfit.Open2D restores it.
func (ix *Index2D) MarshalBinary() ([]byte, error) { return ix.inner.MarshalBinary() }

// UnmarshalBinary loads a serialised two-key index.
//
// Deprecated: use polyfit.Open2D.
func (ix *Index2D) UnmarshalBinary(data []byte) error {
	inner := &core.Index2D{}
	if err := inner.UnmarshalBinary(data); err != nil {
		return err
	}
	ix.inner = inner
	return nil
}
