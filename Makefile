GO ?= go

.PHONY: test race bench bench-smoke benchdiff crashtest chaos cluster cover oracle apicheck lint fmt vet

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark snapshot: runs the core performance probes and writes
# BENCH_PR10.json (see cmd/polyfit-bench). Pass BASELINE=path to embed a
# previous snapshot for a before/after pair.
BENCH_OUT ?= BENCH_PR10.json
BASELINE ?=
bench:
	$(GO) run ./cmd/polyfit-bench -out $(BENCH_OUT) $(if $(BASELINE),-baseline $(BASELINE))

# One-iteration pass over every testing.B benchmark (what CI runs).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Quick before/after: re-run the probes (-quick datasets) and diff against
# the committed baseline snapshot with the in-repo comparator (see
# cmd/benchdiff — offline-friendly stand-in for benchstat, same delta
# table). Report-only: quick runs are too noisy to gate on.
BENCH_BASE ?= BENCH_PR10.json
benchdiff:
	$(GO) run ./cmd/polyfit-bench -quick -out /tmp/bench-head.json
	$(GO) run ./cmd/benchdiff -old $(BENCH_BASE) -new /tmp/bench-head.json

# End-to-end crash-recovery check: build polyfit-serve, run it with a
# -data-dir, acknowledge inserts, SIGKILL it mid-workload, restart, and
# assert every acknowledged insert is still answered.
crashtest:
	$(GO) run ./cmd/polyfit-crashtest

# Chaos matrix: the crash-recovery check repeated under seeded faultfs
# schedules (failed writes, short writes, failed fsyncs, failed renames)
# injected into the server's data dir. Deterministic — each schedule has a
# fixed seed. Asserts the server keeps answering 200 under injection,
# degradation is reported in /v1/stats, and zero durable-acknowledged
# inserts are lost across SIGKILL + recovery.
chaos:
	$(GO) run ./cmd/polyfit-crashtest -chaos

# Replicated-tier scenario: durable leader + two -join followers + -route
# router as four separate processes. Streams single-writer inserts through
# the router, SIGKILLs a follower and then the leader, restarts each, and
# asserts continuous router availability (every read answers 200 with any
# single node down), zero durable-acknowledged-insert loss across the
# leader kill, mid-stream follower rejoin, and byte-identical follower
# answers at the acked watermark.
cluster:
	$(GO) run ./cmd/polyfit-crashtest -cluster

# Per-package coverage floor for the accuracy-critical packages
# (internal/core, internal/segment, internal/server fail under 75%).
cover:
	./scripts/check-coverage.sh

# Differential oracle harness: once with the fixed seed, once with a fresh
# random seed (logged on failure so it can be replayed via ORACLE_SEED=<n>).
oracle:
	$(GO) test ./internal/oracle/ -count=1
	ORACLE_SEED=random $(GO) test -v -run TestDifferential ./internal/oracle/ -count=1

# Public-API guard: every example must build against the current API, and
# the golden-surface test pins every exported identifier of the root
# package (testdata/api.txt; regenerate deliberately with
# `go test -run TestAPISurface . -update`).
apicheck:
	$(GO) build ./examples/...
	$(GO) test -run TestAPISurface . -count=1

# Project-specific static analysis (cmd/polyfit-lint): atomic/plain access
# mixing, "guarded by" mutex annotations, Result.Bound certification,
# sentinel error wrapping, //polyfit:nofloat purity, and Sync/Close
# durability hygiene. Blocking — exits non-zero on any finding.
lint:
	$(GO) run ./cmd/polyfit-lint .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
