package polyfit_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	polyfit "repro"
)

func shardedDataset(n int, seed int64) (keys, measures []float64) {
	rng := rand.New(rand.NewSource(seed))
	set := make(map[float64]bool, n)
	for len(set) < n {
		set[math.Round(rng.NormFloat64()*5e4)/4] = true
	}
	keys = make([]float64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	measures = make([]float64, n)
	for i := range measures {
		measures[i] = 100 + 50*math.Sin(float64(i)/30) + rng.Float64()*10
	}
	return keys, measures
}

// TestShardedIndexPublic exercises the exported sharded surface: build,
// bound-reporting queries, batch, round trip, stats.
func TestShardedIndexPublic(t *testing.T) {
	keys, measures := shardedDataset(2000, 1)
	ix, err := polyfit.NewSharded(polyfit.Sum, keys, measures, polyfit.ShardOptions{
		Options: polyfit.Options{EpsAbs: 40}, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumShards() != 4 {
		t.Fatalf("NumShards = %d", ix.NumShards())
	}
	st := ix.Stats()
	if st.Shards != 4 || st.Records != len(keys) || st.KeyLo != keys[0] || st.KeyHi != keys[len(keys)-1] {
		t.Fatalf("stats %+v", st)
	}
	if got := len(ix.ShardStats()); got != 4 {
		t.Fatalf("ShardStats len %d", got)
	}
	exact := func(l, u float64) float64 {
		s := 0.0
		for i, k := range keys {
			if k > l && k <= u {
				s += measures[i]
			}
		}
		return s
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 200; q++ {
		i, j := rng.Intn(len(keys)), rng.Intn(len(keys))
		if i > j {
			i, j = j, i
		}
		res, err := ix.QueryWithBound(keys[i], keys[j])
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound <= 0 || res.Bound > 4*40 {
			t.Fatalf("bound %g out of range (0, 160]", res.Bound)
		}
		if e := exact(keys[i], keys[j]); math.Abs(res.Value-e) > res.Bound+1e-9*(1+e) {
			t.Fatalf("(%g,%g]: est %g exact %g bound %g", keys[i], keys[j], res.Value, e, res.Bound)
		}
	}
	// Round trip.
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if polyfit.DetectBlob(blob) != polyfit.BlobShardedStatic {
		t.Fatalf("DetectBlob = %v", polyfit.DetectBlob(blob))
	}
	var loaded polyfit.ShardedIndex
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	a, _, _ := ix.Query(keys[3], keys[len(keys)-3])
	b, _, _ := loaded.Query(keys[3], keys[len(keys)-3])
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("round-trip drift: %g vs %g", a, b)
	}
}

// TestShardedDynamicPublic exercises the insertable sharded surface,
// including per-shard rebuilds and the dynamic round trip.
func TestShardedDynamicPublic(t *testing.T) {
	keys, _ := shardedDataset(2400, 3)
	var base, ins []float64
	for i, k := range keys {
		if i%4 == 3 {
			ins = append(ins, k)
		} else {
			base = append(base, k)
		}
	}
	sd, err := polyfit.NewShardedDynamic(polyfit.Count, base, nil, polyfit.ShardOptions{
		Options: polyfit.Options{EpsAbs: 30}, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ins {
		if err := sd.Insert(k, 1); err != nil {
			t.Fatalf("insert %g: %v", k, err)
		}
	}
	if sd.Len() != len(keys) {
		t.Fatalf("Len %d, want %d", sd.Len(), len(keys))
	}
	if err := sd.Insert(ins[0], 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	res, err := sd.QueryWithBound(keys[0]-1, keys[len(keys)-1]+1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-float64(len(keys))) > res.Bound {
		t.Fatalf("full-span count %g ± %g, want %d", res.Value, res.Bound, len(keys))
	}
	if err := sd.RebuildShard(2); err != nil {
		t.Fatal(err)
	}
	blob, err := sd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if polyfit.DetectBlob(blob) != polyfit.BlobShardedDynamic {
		t.Fatalf("DetectBlob = %v", polyfit.DetectBlob(blob))
	}
	var restored polyfit.ShardedDynamic
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != sd.Len() || restored.BufferLen() != sd.BufferLen() {
		t.Fatalf("restored len %d/%d, want %d/%d", restored.Len(), restored.BufferLen(), sd.Len(), sd.BufferLen())
	}
	ra, _, _ := sd.Query(base[10], base[1500])
	rb, _, _ := restored.Query(base[10], base[1500])
	if math.Float64bits(ra) != math.Float64bits(rb) {
		t.Fatalf("restored drift: %g vs %g", ra, rb)
	}
	// Per-shard marshal + assembly round trip (the recovery path).
	blobs := make([][]byte, sd.NumShards())
	for i := range blobs {
		if blobs[i], err = sd.MarshalShard(i); err != nil {
			t.Fatal(err)
		}
	}
	assembled, err := polyfit.AssembleShardedDynamic(sd.Bounds(), blobs)
	if err != nil {
		t.Fatal(err)
	}
	rc, _, _ := assembled.Query(base[10], base[1500])
	if math.Float64bits(ra) != math.Float64bits(rc) {
		t.Fatalf("assembled drift: %g vs %g", ra, rc)
	}
}
