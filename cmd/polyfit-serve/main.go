// polyfit-serve runs the PolyFit query service: an HTTP JSON API over a
// registry of named range-aggregate indexes (see internal/server for the
// endpoint reference). Static indexes are immutable and lock-free; dynamic
// indexes accept concurrent inserts while queries keep answering from
// lock-free snapshots.
//
// Usage:
//
//	polyfit-serve [-addr :8080] [-demo 200000]
//
// With -demo N the server starts with two preloaded indexes built over N
// synthetic records each — "tweet" (dynamic COUNT over latitudes, εabs=100)
// and "hki" (dynamic MAX over a stock-like series, εabs=100) — so it can be
// queried immediately:
//
//	curl -s localhost:8080/v1/indexes
//	curl -s -X POST localhost:8080/v1/indexes/tweet/query -d '{"lo":30,"hi":50}'
//	curl -s -X POST localhost:8080/v1/indexes/tweet/batch \
//	    -d '{"ranges":[{"lo":0,"hi":10},{"lo":-20,"hi":20}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Int("demo", 0, "preload demo indexes over this many synthetic records (0 = none)")
	flag.Parse()

	srv := server.New()
	if *demo > 0 {
		if err := preload(srv, *demo); err != nil {
			log.Fatalf("preload demo indexes: %v", err)
		}
		log.Printf("preloaded demo indexes %q and %q over %d records each", "tweet", "hki", *demo)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		log.Printf("polyfit-serve listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// preload registers the demo indexes over synthetic datasets.
func preload(srv *server.Server, n int) error {
	tweet := server.CreateRequest{
		Name: "tweet", Agg: "count", Dynamic: true,
		Keys: data.GenTweet(n, 1), EpsAbs: 100,
	}
	keys, vals := data.GenHKI(n, 2)
	hki := server.CreateRequest{
		Name: "hki", Agg: "max", Dynamic: true,
		Keys: keys, Measures: vals, EpsAbs: 100,
	}
	for _, req := range []server.CreateRequest{tweet, hki} {
		if _, err := srv.Create(req); err != nil {
			return err
		}
	}
	return nil
}
