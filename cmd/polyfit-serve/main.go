// polyfit-serve runs the PolyFit query service: an HTTP JSON API over a
// registry of named range-aggregate indexes (see internal/server for the
// endpoint reference). Every index — static, dynamic, or sharded — is
// built through the unified polyfit.New builder and served behind the same
// polyfit.Index contract, so every query and batch response carries the
// certified absolute error bound in "bound". Static indexes are immutable
// and lock-free; dynamic indexes accept concurrent inserts while queries
// keep answering from lock-free snapshots.
//
// Usage:
//
//	polyfit-serve [-addr :8080] [-demo 200000] [-demo-shards K] [-data-dir DIR] [-snapshot-interval 15s]
//	              [-drain-timeout 10s] [-fault-schedule ""] [-fault-seed 1] [-cache-bytes 0]
//	polyfit-serve -join http://leader:8080 [-addr :8081] [-advertise URL]     # read replica
//	polyfit-serve -route http://n1:8080,http://n2:8081 [-hedge-delay 2ms]     # router
//
// With -cache-bytes N the server keeps up to N bytes of completed query
// responses — certified error bound included — and serves repeats straight
// from memory. Cached entries are keyed by the index's data generation, so
// an insert or rebuild structurally invalidates them; a stale answer is
// never served (see internal/server for the full argument).
//
// With -data-dir the server is durable: every index is snapshotted to DIR,
// acknowledged inserts are fsynced to a per-index write-ahead log before
// the response goes out, and on startup the registry is recovered from DIR
// — so a crash (SIGKILL included) loses nothing that was acknowledged. The
// background snapshotter folds the log into a fresh snapshot every
// -snapshot-interval.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests for up to -drain-timeout, then snapshots and closes —
// so a graceful stop never abandons acknowledged work mid-request.
//
// With -join the process is a read replica: it mirrors the leader's
// registry in memory (snapshot + WAL streaming, see internal/cluster),
// serves reads at a reported staleness, and answers writes with 409 plus
// an X-Polyfit-Leader redirect hint. -join is mutually exclusive with
// -data-dir — the leader owns the durable state.
//
// With -route the process is a router over a replica set: reads fan out
// over healthy replicas with hedged requests (a second attempt fires
// after -hedge-delay; first definitive answer wins, the loser is
// canceled), gated by each request's max_staleness_ms; writes forward to
// the leader. /v1/stats reports per-replica health and the hedge
// counters.
//
// -fault-schedule runs the data dir behind the fault-injection filesystem
// (internal/faultfs) for chaos testing: e.g. "write@20-70" fails writes 20
// through 69, "sync:0.1" fails 10% of fsyncs (seeded by -fault-seed).
// Failed WAL appends degrade the index to snapshot-only durability
// (inserts answer durable:false) instead of blocking; /v1/stats records
// the degradation. Never use it outside testing.
//
// With -demo N the server starts with two preloaded indexes built over N
// synthetic records each — "tweet" (dynamic COUNT over latitudes, εabs=100)
// and "hki" (dynamic MAX over a stock-like series, εabs=100) — so it can be
// queried immediately (indexes already recovered from -data-dir are kept,
// not rebuilt). With -demo-shards K > 1 the demo indexes are built sharded:
// K range partitions with scatter-gather queries, shard-local inserts, and
// (with -data-dir) one snapshot+WAL pair per shard:
//
//	curl -s localhost:8080/v1/indexes
//	curl -s -X POST localhost:8080/v1/indexes/tweet/query -d '{"lo":30,"hi":50}'
//	curl -s -X POST localhost:8080/v1/indexes/tweet/batch \
//	    -d '{"ranges":[{"lo":0,"hi":10},{"lo":-20,"hi":20}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/faultfs"
	"repro/internal/persist"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Int("demo", 0, "preload demo indexes over this many synthetic records (0 = none)")
	demoShards := flag.Int("demo-shards", 0, "build the demo indexes with this many range-partitioned shards (≤1 = unsharded)")
	dataDir := flag.String("data-dir", "", "directory for snapshots and insert WALs (empty = in-memory only)")
	snapInterval := flag.Duration("snapshot-interval", 15*time.Second, "background snapshot period (requires -data-dir; <0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	faultSchedule := flag.String("fault-schedule", "", "faultfs injection schedule for the data dir, e.g. write@20-70 or sync:0.1 (testing only)")
	faultSeed := flag.Int64("fault-seed", 1, "PRNG seed for probabilistic -fault-schedule rules")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte budget; cached responses keep their certified bounds and invalidate by data generation (0 = disabled)")
	join := flag.String("join", "", "leader base URL to replicate from (follower mode, in-memory; mutually exclusive with -data-dir)")
	advertise := flag.String("advertise", "", "URL this node reports to peers (default derived from -addr)")
	route := flag.String("route", "", "comma-separated replica base URLs: run as a hedged scatter-gather router instead of a server")
	hedgeDelay := flag.Duration("hedge-delay", 2*time.Millisecond, "router: delay before hedging a read to the next-fastest replica (<0 disables)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "router: replica health-probe period")
	maxStaleness := flag.Duration("max-staleness", 0, "router: default read staleness gate when a request has no max_staleness_ms (0 = none)")
	flag.Parse()

	if *advertise == "" {
		*advertise = deriveAdvertise(*addr)
	}
	if *route != "" {
		runRouter(*addr, *route, *hedgeDelay, *probeInterval, *maxStaleness, *drainTimeout)
		return
	}

	var fsys persist.FS
	if *faultSchedule != "" {
		var err error
		if fsys, err = faultfs.New(persist.OSFS(), *faultSchedule, *faultSeed); err != nil {
			log.Fatalf("fault schedule: %v", err)
		}
		log.Printf("FAULT INJECTION ACTIVE: schedule %q seed %d", *faultSchedule, *faultSeed)
	}
	srv, err := server.NewDurable(server.Config{
		DataDir:          *dataDir,
		SnapshotInterval: *snapInterval,
		Logf:             log.Printf,
		FS:               fsys,
		CacheBytes:       *cacheBytes,
		Join:             *join,
		Advertise:        *advertise,
	})
	if err != nil {
		log.Fatalf("open data dir %q: %v", *dataDir, err)
	}
	if *dataDir != "" {
		// The recovery log line: what came back, what was replayed, what was
		// skipped as corrupt, and how long boot-time recovery took.
		log.Printf("durable mode: data dir %s; %s", *dataDir, srv.Recovery())
	}
	if *join != "" {
		log.Printf("follower mode: replicating from %s as %s", *join, *advertise)
	}
	if *demo > 0 {
		if err := preload(srv, *demo, *demoShards); err != nil {
			log.Fatalf("preload demo indexes: %v", err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		log.Printf("polyfit-serve listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down")
	// Ordered teardown: (1) stop accepting new connections and let the
	// in-flight ones finish (http.Server.Shutdown), (2) drain the handler
	// layer under the same deadline — new requests get 503 + Retry-After
	// while started ones complete, (3) only then the final snapshot and
	// WAL teardown, so Close never races a request that could still
	// acknowledge work.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	// Final snapshot + WAL handle release; recovery after a graceful stop
	// then replays nothing.
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// preload registers the demo indexes over synthetic datasets. Indexes that
// already exist (recovered from -data-dir) are kept as-is. shards > 1
// builds them range-partitioned.
func preload(srv *server.Server, n, shards int) error {
	tweet := server.CreateRequest{
		Name: "tweet", Agg: "count", Dynamic: true,
		Keys: data.GenTweet(n, 1), EpsAbs: 100, Shards: shards,
	}
	keys, vals := data.GenHKI(n, 2)
	hki := server.CreateRequest{
		Name: "hki", Agg: "max", Dynamic: true,
		Keys: keys, Measures: vals, EpsAbs: 100, Shards: shards,
	}
	for _, req := range []server.CreateRequest{tweet, hki} {
		if _, err := srv.Create(req); err != nil {
			if errors.Is(err, server.ErrExists) {
				log.Printf("demo index %q already present (recovered); keeping it", req.Name)
				continue
			}
			return err
		}
		if shards > 1 {
			log.Printf("preloaded demo index %q over %d records in %d shards", req.Name, n, shards)
		} else {
			log.Printf("preloaded demo index %q over %d records", req.Name, n)
		}
	}
	return nil
}

// deriveAdvertise turns a listen address into a URL peers can reach: a
// bare ":8080" becomes "http://127.0.0.1:8080" (single-host clusters —
// multi-host deployments must pass -advertise explicitly).
func deriveAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// runRouter serves the hedged scatter-gather router until SIGINT/SIGTERM.
func runRouter(addr, route string, hedgeDelay, probeInterval, maxStaleness, drainTimeout time.Duration) {
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:      strings.Split(route, ","),
		HedgeDelay:    hedgeDelay,
		ProbeInterval: probeInterval,
		MaxStaleness:  maxStaleness,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	httpSrv := &http.Server{Addr: addr, Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		log.Printf("polyfit-serve routing %s on %s", route, addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()
	<-ctx.Done()
	log.Print("router shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	rt.Close()
}
