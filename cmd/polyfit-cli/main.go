// Command polyfit-cli builds, inspects and queries PolyFit indexes over CSV
// data from the command line, through the unified builder API: one code
// path constructs every aggregate and layout, and every query answer
// carries its certified error bound.
//
// Usage:
//
//	polyfit-cli build  -in data.csv -agg count -eps 100 -out idx.pfi
//	polyfit-cli build  -in data.csv -agg sum -eps 1000 -shards 8 -out idx.pfi
//	polyfit-cli stats  -index idx.pfi
//	polyfit-cli query  -index idx.pfi -l 10.5 -u 99.25
//	polyfit-cli query  -in data.csv -agg max -eps 50 -l 10 -u 99   # ad hoc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	polyfit "repro"
	"repro/internal/data"
	"repro/internal/persist"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "wal":
		err = runWAL(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `polyfit-cli <build|stats|query|wal> [flags]
  build: -in data.csv -agg count|sum|min|max -eps E [-degree D] [-shards K] -out idx.pfi
  stats: -index idx.pfi
  query: -index idx.pfi -l L -u U  (or ad hoc: -in data.csv -agg A -eps E -l L -u U)
  wal:   -file data/<index>.wal [-tail N] [-json]  (inspect a write-ahead log)`)
}

// aggOf parses the command-line aggregate name.
func aggOf(agg string) (polyfit.Agg, error) {
	switch agg {
	case "count":
		return polyfit.Count, nil
	case "sum":
		return polyfit.Sum, nil
	case "min":
		return polyfit.Min, nil
	case "max":
		return polyfit.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q (want count|sum|min|max)", agg)
	}
}

func buildIndex(in, agg string, eps float64, degree, shards int) (polyfit.Index, error) {
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	keys, measures, err := data.ReadCSV1D(f)
	if err != nil {
		return nil, err
	}
	a, err := aggOf(agg)
	if err != nil {
		return nil, err
	}
	if shards <= 1 {
		shards = 0 // unsharded, as the -shards help promises (1 would build a 1-shard container)
	}
	opts := []polyfit.Option{
		polyfit.WithMaxError(eps),
		polyfit.WithDegree(degree),
		polyfit.WithFallback(false),
		polyfit.WithShards(shards),
	}
	return polyfit.New(polyfit.Spec{Agg: a, Keys: keys, Measures: measures}, opts...)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (key,measure)")
	agg := fs.String("agg", "count", "count | sum | min | max")
	eps := fs.Float64("eps", 100, "absolute error guarantee εabs")
	degree := fs.Int("degree", 2, "polynomial degree")
	shards := fs.Int("shards", 0, "range partitions (≤1 = unsharded)")
	out := fs.String("out", "index.pfi", "output index file")
	_ = fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("build: -in is required")
	}
	ix, err := buildIndex(*in, *agg, *eps, *degree, *shards)
	if err != nil {
		return err
	}
	blob, err := ix.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("built %s (%d bytes): %s\n", *out, len(blob), ix.Stats())
	return nil
}

func loadIndex(path string) (polyfit.Index, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return polyfit.Open(blob)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	index := fs.String("index", "", "index file")
	_ = fs.Parse(args)
	if *index == "" {
		return fmt.Errorf("stats: -index is required")
	}
	ix, err := loadIndex(*index)
	if err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Println(st)
	// Size breakdown: segment bounds + coefficient lanes + locate root make
	// up the compact structure; anything else (delta buffers, segment
	// extrema, RMQ tables) lands in the remainder line.
	segBytes := st.IndexBytes - st.CoeffBytes - st.RootBytes
	fmt.Printf("  encoding:          %s\n", st.Encoding)
	fmt.Printf("  coefficient lanes: %d B\n", st.CoeffBytes)
	fmt.Printf("  learned root:      %d B\n", st.RootBytes)
	fmt.Printf("  segments + rest:   %d B\n", segBytes)
	if st.FallbackBytes > 0 {
		fmt.Printf("  exact fallback:    %d B (not serialised)\n", st.FallbackBytes)
	}
	if sh, ok := ix.(polyfit.Sharder); ok {
		fmt.Printf("sharded: %d range partitions\n", sh.NumShards())
		for i, ss := range sh.ShardStats() {
			fmt.Printf("  shard %2d: %8d records, %6d segments, %8d B (%s), keys [%g, %g]\n",
				i, ss.Records, ss.Segments, ss.IndexBytes, ss.Encoding, ss.KeyLo, ss.KeyHi)
		}
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	index := fs.String("index", "", "index file (or use -in for ad hoc)")
	in := fs.String("in", "", "CSV for ad hoc build")
	agg := fs.String("agg", "count", "aggregate for ad hoc build")
	eps := fs.Float64("eps", 100, "εabs for ad hoc build")
	degree := fs.Int("degree", 2, "degree for ad hoc build")
	l := fs.Float64("l", 0, "range lower bound")
	u := fs.Float64("u", 0, "range upper bound")
	_ = fs.Parse(args)

	var ix polyfit.Index
	var err error
	switch {
	case *index != "":
		ix, err = loadIndex(*index)
	case *in != "":
		ix, err = buildIndex(*in, *agg, *eps, *degree, 0)
	default:
		return fmt.Errorf("query: need -index or -in")
	}
	if err != nil {
		return err
	}
	res, err := ix.Query(polyfit.Range{Lo: *l, Hi: *u})
	if err != nil {
		return err
	}
	if !res.Found {
		fmt.Println("no records in range")
		return nil
	}
	st := ix.Stats()
	fmt.Printf("%v over (%g, %g] ≈ %g ± %g (certified bound)\n", st.Aggregate, *l, *u, res.Value, res.Bound)
	return nil
}

// runWAL inspects a write-ahead log file: header validity, intact record
// count, torn tail bytes, and the last few records with their sequence
// numbers relative to the file start (the replication stream offsets are
// this numbering plus the leader's truncated-away origin).
func runWAL(args []string) error {
	fs := flag.NewFlagSet("wal", flag.ExitOnError)
	file := fs.String("file", "", "WAL file to inspect (e.g. data/<index>.wal)")
	tail := fs.Int("tail", 10, "records to print from the end (0 = none, -1 = all)")
	asJSON := fs.Bool("json", false, "machine-readable output")
	_ = fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("wal: need -file")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	recs, torn, err := persist.DecodeWALFile(data)
	if err != nil {
		return fmt.Errorf("wal %s: %w", *file, err)
	}
	first := 0
	if *tail >= 0 && len(recs) > *tail {
		first = len(recs) - *tail
	}
	if *asJSON {
		type walRecord struct {
			Seq     int     `json:"seq"`
			Key     float64 `json:"key"`
			Measure float64 `json:"measure"`
		}
		out := struct {
			File      string      `json:"file"`
			Bytes     int         `json:"bytes"`
			Records   int         `json:"records"`
			TornBytes int         `json:"torn_bytes"`
			Tail      []walRecord `json:"tail,omitempty"`
		}{File: *file, Bytes: len(data), Records: len(recs), TornBytes: torn}
		for i := first; i < len(recs); i++ {
			out.Tail = append(out.Tail, walRecord{Seq: i, Key: recs[i].Key, Measure: recs[i].Measure})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&out)
	}
	fmt.Printf("%s: %d bytes, %d records", *file, len(data), len(recs))
	if torn > 0 {
		fmt.Printf(", %d torn trailing bytes (dropped on recovery)", torn)
	}
	fmt.Println()
	for i := first; i < len(recs); i++ {
		fmt.Printf("  [%d] key=%g measure=%g\n", i, recs[i].Key, recs[i].Measure)
	}
	return nil
}
