// polyfit-crashtest is the end-to-end durability check behind `make
// crashtest`: it builds polyfit-serve, runs it with a -data-dir, streams
// acknowledged inserts at it, SIGKILLs the process mid-workload, restarts
// it over the same directory, and asserts that every insert acknowledged
// before the kill is reflected in query answers. It exercises the whole
// stack the way a real crash does — no graceful shutdown, no flush hooks —
// so it fails if any layer (WAL fsync ordering, snapshot atomicity,
// recovery replay) regresses.
//
// Usage:
//
//	go run ./cmd/polyfit-crashtest [-n 400] [-keep] [-serve-bin PATH] [-chaos] [-cluster]
//
// With -chaos it additionally runs the fault-injection matrix (`make
// chaos`): for each seeded faultfs schedule — failed writes, short writes,
// failed fsyncs, failed renames — the server runs with the fault schedule
// active while inserts stream at it. The server must keep serving (every
// insert and query answers 200, never hangs), must record the degradation
// in /v1/stats when WAL appends fail (those inserts answer durable:false),
// and after a SIGKILL and a faultless restart every insert acknowledged
// durable:true must be present. The schedules are deterministic: the same
// seeds fail the same operations on every run.
//
// With -cluster it runs the replicated-tier scenario (`make cluster`)
// instead: a durable leader, two -join followers, and a -route router as
// four separate processes. A single-writer insert stream runs through the
// router while a follower and then the leader are SIGKILLed and
// restarted. The run fails if the router ever answers a read with a
// non-200 while any single node is down, if any durable-acknowledged
// insert is missing after the leader restart, or if a follower that
// reports the leader's watermark answers a query with different bytes
// than the leader.
//
// Exit status 0 means every acknowledged insert survived.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

type record struct {
	Key     float64 `json:"key"`
	Measure float64 `json:"measure"`
}

type insertResponse struct {
	Inserted int  `json:"inserted"`
	Durable  bool `json:"durable"`
}

type queryResponse struct {
	Value float64 `json:"value"`
	Found bool    `json:"found"`
	Exact bool    `json:"exact"`
}

func main() {
	n := flag.Int("n", 400, "inserts to acknowledge before the kill")
	keep := flag.Bool("keep", false, "keep the scratch directory for inspection")
	serveBin := flag.String("serve-bin", "", "prebuilt polyfit-serve binary (default: build it)")
	chaos := flag.Bool("chaos", false, "run the fault-injection matrix instead of the plain crash test")
	clusterMode := flag.Bool("cluster", false, "run the replicated-tier scenario (leader + 2 followers + router, kill -9 of each role) instead of the plain crash test")
	flag.Parse()
	log.SetFlags(0)

	scratch, err := os.MkdirTemp("", "polyfit-crashtest-*")
	must(err, "scratch dir")
	if !*keep {
		defer os.RemoveAll(scratch)
	} else {
		log.Printf("scratch dir: %s", scratch)
	}
	dataDir := filepath.Join(scratch, "data")

	bin := *serveBin
	if bin == "" {
		bin = filepath.Join(scratch, "polyfit-serve")
		log.Printf("building polyfit-serve...")
		build := exec.Command("go", "build", "-o", bin, "./cmd/polyfit-serve")
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		must(build.Run(), "build polyfit-serve")
	}

	if *chaos {
		runChaos(bin, scratch, *n)
		return
	}
	if *clusterMode {
		runCluster(bin, scratch, *n)
		return
	}

	addr := freeAddr()
	base := "http://" + addr

	// Phase 1: start, create a durable dynamic index, acknowledge inserts.
	// A short snapshot interval makes snapshot+truncate cycles race the
	// insert stream, which is exactly the window crash recovery must cover.
	proc := start(bin, addr, dataDir)
	waitHealthy(base)
	post(base, "/v1/indexes", map[string]any{
		"name": "crash", "agg": "count", "dynamic": true,
		"keys": seq(0, 5000), "eps_abs": 100,
	})

	acked := make([]float64, 0, *n)
	for i := 0; i < *n; i++ {
		k := 1e7 + float64(i)
		var resp insertResponse
		postJSON(base, "/v1/indexes/crash/insert",
			map[string]any{"records": []record{{Key: k, Measure: 1}}}, &resp)
		if resp.Inserted != 1 || !resp.Durable {
			log.Fatalf("insert %d not acknowledged durable: %+v", i, resp)
		}
		acked = append(acked, k)
	}
	log.Printf("acknowledged %d inserts; killing -9 mid-workload", len(acked))

	// Phase 2: SIGKILL — no shutdown path runs.
	must(proc.Process.Kill(), "kill")
	proc.Wait() //nolint:errcheck

	// Phase 3: restart over the same data dir and verify every insert.
	proc2 := start(bin, addr, dataDir)
	defer func() {
		proc2.Process.Kill() //nolint:errcheck
		proc2.Wait()         //nolint:errcheck
	}()
	waitHealthy(base)

	lost := 0
	for _, k := range acked {
		// The width-0.5 window holds exactly this key; a tiny count fails
		// the relative gate, so the exact fallback answers — 1 iff present.
		var q queryResponse
		postJSON(base, "/v1/indexes/crash/query",
			map[string]any{"lo": k - 0.5, "hi": k, "eps_rel": 0.01}, &q)
		if !q.Exact || q.Value != 1 {
			lost++
			if lost <= 5 {
				log.Printf("LOST acknowledged insert %g (exact=%v value=%g)", k, q.Exact, q.Value)
			}
		}
	}
	var stats struct {
		Records int `json:"records"`
	}
	getJSON(base+"/v1/indexes/crash", &stats)
	if want := 5000 + len(acked); stats.Records != want {
		log.Fatalf("FAIL: recovered %d records, want %d", stats.Records, want)
	}
	if lost > 0 {
		log.Fatalf("FAIL: %d/%d acknowledged inserts lost after SIGKILL", lost, len(acked))
	}
	log.Printf("PASS: all %d acknowledged inserts survived SIGKILL + recovery (%d records)",
		len(acked), stats.Records)
}

// --- chaos mode -------------------------------------------------------------

// chaosCase is one seeded faultfs schedule of the matrix. Seeds are fixed
// so every run injects faults at exactly the same operations.
type chaosCase struct {
	schedule string
	seed     int64
}

// serverStats is the slice of GET /v1/stats the chaos harness checks.
type serverStats struct {
	DegradedIndexes   int   `json:"degraded_indexes"`
	PersistErrors     int64 `json:"persist_errors"`
	NonDurableInserts int64 `json:"non_durable_inserts"`
}

func runChaos(bin, scratch string, n int) {
	cases := []chaosCase{
		{"write@20-70", 7},  // EIO on data-dir writes 20..69
		{"short@20-70", 11}, // torn half-writes 20..69
		{"sync@10-45", 13},  // fsync failures 10..44
		{"rename:0.5", 17},  // half of all atomic-commit renames fail (seeded)
	}
	for _, c := range cases {
		runChaosCase(bin, scratch, n, c)
	}
	log.Printf("CHAOS PASS: %d schedules, zero durable-acknowledged inserts lost", len(cases))
}

func runChaosCase(bin, scratch string, n int, c chaosCase) {
	log.Printf("--- chaos schedule %q seed %d ---", c.schedule, c.seed)
	dataDir := filepath.Join(scratch, fmt.Sprintf("chaos-%d", c.seed))
	addr := freeAddr()
	base := "http://" + addr

	proc := startFaulty(bin, addr, dataDir, c.schedule, c.seed)
	waitHealthy(base)

	// Create may land inside the fault window (its own snapshot and WAL
	// writes are injected too); retry — under faults the contract is
	// degraded service, never a wedged server.
	created := false
	for attempt := 0; attempt < 12 && !created; attempt++ {
		created = postStatus(base, "/v1/indexes", map[string]any{
			"name": "chaos", "agg": "count", "dynamic": true,
			"keys": seq(0, 5000), "eps_abs": 100,
		}, nil) == http.StatusCreated
		if !created {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !created {
		log.Fatalf("chaos %q: index never created (12 attempts)", c.schedule)
	}

	// Insert workload under injection. Every insert must be answered 200 —
	// a sick disk degrades durability (durable:false), it never blocks or
	// errors the serving path. Only durable:true acknowledgements carry
	// the crash-survival guarantee.
	durable := make([]float64, 0, n)
	nonDurable := 0
	for i := 0; i < n; i++ {
		k := 1e7 + float64(i)
		var resp insertResponse
		status := postStatus(base, "/v1/indexes/chaos/insert",
			map[string]any{"records": []record{{Key: k, Measure: 1}}}, &resp)
		if status != http.StatusOK || resp.Inserted != 1 {
			log.Fatalf("chaos %q: insert %d not acknowledged (status %d, %+v) — serving must survive faults",
				c.schedule, i, status, resp)
		}
		if resp.Durable {
			durable = append(durable, k)
		} else {
			nonDurable++
		}
		if i%16 == 0 {
			// The query path must keep answering while the disk misbehaves.
			var q queryResponse
			if status := postStatus(base, "/v1/indexes/chaos/query",
				map[string]any{"lo": 0, "hi": 5000}, &q); status != http.StatusOK {
				log.Fatalf("chaos %q: query during faults: status %d", c.schedule, status)
			}
		}
	}

	var stats serverStats
	getJSON(base+"/v1/stats", &stats)
	log.Printf("chaos %q: %d durable acks, %d non-durable; stats: degraded_indexes=%d persist_errors=%d non_durable_inserts=%d",
		c.schedule, len(durable), nonDurable, stats.DegradedIndexes, stats.PersistErrors, stats.NonDurableInserts)
	if nonDurable > 0 && stats.NonDurableInserts == 0 {
		log.Fatalf("chaos %q: %d non-durable acknowledgements but /v1/stats recorded none", c.schedule, nonDurable)
	}
	if nonDurable > 0 && stats.PersistErrors == 0 {
		log.Fatalf("chaos %q: degradation happened but persist_errors is 0", c.schedule)
	}

	must(proc.Process.Kill(), "kill")
	proc.Wait() //nolint:errcheck

	// Faultless restart: recovery must surface every durable-acknowledged
	// insert, whether it reached disk via the WAL, a snapshot, or both
	// (idempotent replay sorts out the overlap).
	proc2 := start(bin, addr, dataDir)
	defer func() {
		proc2.Process.Kill() //nolint:errcheck
		proc2.Wait()         //nolint:errcheck
	}()
	waitHealthy(base)
	lost := 0
	for _, k := range durable {
		var q queryResponse
		postJSON(base, "/v1/indexes/chaos/query",
			map[string]any{"lo": k - 0.5, "hi": k, "eps_rel": 0.01}, &q)
		if !q.Exact || q.Value != 1 {
			lost++
			if lost <= 5 {
				log.Printf("LOST durable-acknowledged insert %g (exact=%v value=%g)", k, q.Exact, q.Value)
			}
		}
	}
	if lost > 0 {
		log.Fatalf("FAIL: chaos %q: %d/%d durable-acknowledged inserts lost after SIGKILL", c.schedule, lost, len(durable))
	}
	log.Printf("chaos %q: all %d durable-acknowledged inserts survived SIGKILL + faultless recovery", c.schedule, len(durable))
}

func start(bin, addr, dataDir string) *exec.Cmd {
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-snapshot-interval", "150ms")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	must(cmd.Start(), "start polyfit-serve")
	return cmd
}

func startFaulty(bin, addr, dataDir, schedule string, seed int64) *exec.Cmd {
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-snapshot-interval", "150ms",
		"-fault-schedule", schedule, "-fault-seed", fmt.Sprint(seed))
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	must(cmd.Start(), "start polyfit-serve (faulty)")
	return cmd
}

// postStatus is postJSON without the fatal-on-error-status behavior: chaos
// rounds need to observe failure statuses, not die on them. Transport
// errors are still fatal (the server must never stop answering).
func postStatus(base, path string, body, out any) int {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	must(err, "POST "+path)
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		must(json.Unmarshal(payload, out), "decode "+path)
	}
	return resp.StatusCode
}

func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	must(err, "probe free port")
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(base string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("server at %s never became healthy", base)
}

func post(base, path string, body any) {
	postJSON(base, path, body, nil)
}

func postJSON(base, path string, body, out any) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	must(err, "POST "+path)
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", path, resp.StatusCode, payload)
	}
	if out != nil {
		must(json.Unmarshal(payload, out), "decode "+path)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	must(err, "GET "+url)
	defer resp.Body.Close()
	must(json.NewDecoder(resp.Body).Decode(out), "decode "+url)
}

func seq(lo float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + float64(i)
	}
	return out
}

func must(err error, what string) {
	if err != nil {
		log.Fatalf("%s: %v", what, err)
	}
}
