// polyfit-crashtest is the end-to-end durability check behind `make
// crashtest`: it builds polyfit-serve, runs it with a -data-dir, streams
// acknowledged inserts at it, SIGKILLs the process mid-workload, restarts
// it over the same directory, and asserts that every insert acknowledged
// before the kill is reflected in query answers. It exercises the whole
// stack the way a real crash does — no graceful shutdown, no flush hooks —
// so it fails if any layer (WAL fsync ordering, snapshot atomicity,
// recovery replay) regresses.
//
// Usage:
//
//	go run ./cmd/polyfit-crashtest [-n 400] [-keep] [-serve-bin PATH]
//
// Exit status 0 means every acknowledged insert survived.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

type record struct {
	Key     float64 `json:"key"`
	Measure float64 `json:"measure"`
}

type insertResponse struct {
	Inserted int  `json:"inserted"`
	Durable  bool `json:"durable"`
}

type queryResponse struct {
	Value float64 `json:"value"`
	Found bool    `json:"found"`
	Exact bool    `json:"exact"`
}

func main() {
	n := flag.Int("n", 400, "inserts to acknowledge before the kill")
	keep := flag.Bool("keep", false, "keep the scratch directory for inspection")
	serveBin := flag.String("serve-bin", "", "prebuilt polyfit-serve binary (default: build it)")
	flag.Parse()
	log.SetFlags(0)

	scratch, err := os.MkdirTemp("", "polyfit-crashtest-*")
	must(err, "scratch dir")
	if !*keep {
		defer os.RemoveAll(scratch)
	} else {
		log.Printf("scratch dir: %s", scratch)
	}
	dataDir := filepath.Join(scratch, "data")

	bin := *serveBin
	if bin == "" {
		bin = filepath.Join(scratch, "polyfit-serve")
		log.Printf("building polyfit-serve...")
		build := exec.Command("go", "build", "-o", bin, "./cmd/polyfit-serve")
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		must(build.Run(), "build polyfit-serve")
	}

	addr := freeAddr()
	base := "http://" + addr

	// Phase 1: start, create a durable dynamic index, acknowledge inserts.
	// A short snapshot interval makes snapshot+truncate cycles race the
	// insert stream, which is exactly the window crash recovery must cover.
	proc := start(bin, addr, dataDir)
	waitHealthy(base)
	post(base, "/v1/indexes", map[string]any{
		"name": "crash", "agg": "count", "dynamic": true,
		"keys": seq(0, 5000), "eps_abs": 100,
	})

	acked := make([]float64, 0, *n)
	for i := 0; i < *n; i++ {
		k := 1e7 + float64(i)
		var resp insertResponse
		postJSON(base, "/v1/indexes/crash/insert",
			map[string]any{"records": []record{{Key: k, Measure: 1}}}, &resp)
		if resp.Inserted != 1 || !resp.Durable {
			log.Fatalf("insert %d not acknowledged durable: %+v", i, resp)
		}
		acked = append(acked, k)
	}
	log.Printf("acknowledged %d inserts; killing -9 mid-workload", len(acked))

	// Phase 2: SIGKILL — no shutdown path runs.
	must(proc.Process.Kill(), "kill")
	proc.Wait() //nolint:errcheck

	// Phase 3: restart over the same data dir and verify every insert.
	proc2 := start(bin, addr, dataDir)
	defer func() {
		proc2.Process.Kill() //nolint:errcheck
		proc2.Wait()         //nolint:errcheck
	}()
	waitHealthy(base)

	lost := 0
	for _, k := range acked {
		// The width-0.5 window holds exactly this key; a tiny count fails
		// the relative gate, so the exact fallback answers — 1 iff present.
		var q queryResponse
		postJSON(base, "/v1/indexes/crash/query",
			map[string]any{"lo": k - 0.5, "hi": k, "eps_rel": 0.01}, &q)
		if !q.Exact || q.Value != 1 {
			lost++
			if lost <= 5 {
				log.Printf("LOST acknowledged insert %g (exact=%v value=%g)", k, q.Exact, q.Value)
			}
		}
	}
	var stats struct {
		Records int `json:"records"`
	}
	getJSON(base+"/v1/indexes/crash", &stats)
	if want := 5000 + len(acked); stats.Records != want {
		log.Fatalf("FAIL: recovered %d records, want %d", stats.Records, want)
	}
	if lost > 0 {
		log.Fatalf("FAIL: %d/%d acknowledged inserts lost after SIGKILL", lost, len(acked))
	}
	log.Printf("PASS: all %d acknowledged inserts survived SIGKILL + recovery (%d records)",
		len(acked), stats.Records)
}

func start(bin, addr, dataDir string) *exec.Cmd {
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-snapshot-interval", "150ms")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	must(cmd.Start(), "start polyfit-serve")
	return cmd
}

func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	must(err, "probe free port")
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(base string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("server at %s never became healthy", base)
}

func post(base, path string, body any) {
	postJSON(base, path, body, nil)
}

func postJSON(base, path string, body, out any) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	must(err, "POST "+path)
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", path, resp.StatusCode, payload)
	}
	if out != nil {
		must(json.Unmarshal(payload, out), "decode "+path)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	must(err, "GET "+url)
	defer resp.Body.Close()
	must(json.NewDecoder(resp.Body).Decode(out), "decode "+url)
}

func seq(lo float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + float64(i)
	}
	return out
}

func must(err error, what string) {
	if err != nil {
		log.Fatalf("%s: %v", what, err)
	}
}
