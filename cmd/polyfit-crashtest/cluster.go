package main

// Cluster mode (`make cluster`): a three-node replicated tier — durable
// leader, two in-memory followers — behind the hedged scatter-gather
// router, driven through kill -9 of a follower and of the leader. The
// assertions mirror the replication tier's contract:
//
//   - availability: queries through the router answer 200 during both
//     kills (the hedge/failover path absorbs the dead replica; no 5xx
//     burst beyond the in-flight attempt that discovers the corpse);
//   - durability: after the leader is SIGKILLed and restarted over its
//     data dir, every insert the router acknowledged durable:true is
//     present — replication must not weaken the single-node guarantee;
//   - convergence: a follower killed and restarted rejoins mid-stream,
//     and once the followers report the leader's end sequences their
//     query responses are byte-identical to the leader's;
//   - write fencing: followers answer writes 409 with the leader's URL
//     in X-Polyfit-Leader.
//
// The insert stream runs from a single goroutine: the determinism
// contract (follower state = snapshot + record stream) pins the
// leader's WAL order to its apply order only when one writer drives the
// index — exactly how the replication protocol is meant to be used.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

func startFollower(bin, addr, leaderURL string) *exec.Cmd {
	cmd := exec.Command(bin, "-addr", addr, "-join", leaderURL)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	must(cmd.Start(), "start follower")
	return cmd
}

func startRouter(bin, addr, replicas string) *exec.Cmd {
	cmd := exec.Command(bin, "-addr", addr, "-route", replicas,
		"-probe-interval", "50ms", "-hedge-delay", "2ms")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	must(cmd.Start(), "start router")
	return cmd
}

// dropIdleConns discards the default client's pooled keep-alive
// connections: after a kill -9 and a rebind of the same address, a pooled
// connection to the old process answers the next request with EOF.
func dropIdleConns() {
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// clusterStatus is the slice of GET /v1/cluster/status the harness reads.
type clusterStatus struct {
	Epoch   int64 `json:"epoch"`
	Indexes []struct {
		Name string  `json:"name"`
		Seqs []int64 `json:"seqs"`
	} `json:"indexes"`
}

// followerStats is the slice of a follower's GET /v1/stats the harness
// reads.
type followerStats struct {
	Role         string             `json:"role"`
	StalenessMS  int64              `json:"staleness_ms"`
	AckWatermark map[string][]int64 `json:"ack_watermark"`
}

// waitCaughtUp blocks until the follower's applied watermark reaches the
// leader's end sequences for index name.
func waitCaughtUp(leaderURL, followerURL, name string) {
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var ls clusterStatus
		getJSON(leaderURL+"/v1/cluster/status", &ls)
		var fs followerStats
		getJSON(followerURL+"/v1/stats", &fs)
		for _, ix := range ls.Indexes {
			if ix.Name != name {
				continue
			}
			wm, ok := fs.AckWatermark[name]
			if ok && len(wm) == len(ix.Seqs) {
				caught := true
				for i := range wm {
					if wm[i] < ix.Seqs[i] {
						caught = false
					}
				}
				if caught {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	log.Fatalf("follower %s never caught up with %s on %q", followerURL, leaderURL, name)
}

// rawQueryBytes returns the raw response body of a query — the unit of the
// bitwise-identity comparison between leader and follower.
func rawQueryBytes(base, name, body string) []byte {
	resp, err := http.Post(base+"/v1/indexes/"+name+"/query", "application/json",
		bytes.NewReader([]byte(body)))
	must(err, "query "+base)
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	must(err, "read query "+base)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("query %s on %s: %d %s", body, base, resp.StatusCode, payload)
	}
	return payload
}

// assertAvailability runs qn queries through the router and requires every
// one to answer 200 — the hedge/failover path must absorb a dead replica
// without surfacing errors to clients.
func assertAvailability(routerURL, phase string, qn int) {
	for i := 0; i < qn; i++ {
		raw, _ := json.Marshal(map[string]any{"lo": 0.0, "hi": 1e12})
		resp, err := http.Post(routerURL+"/v1/indexes/crash/query", "application/json",
			bytes.NewReader(raw))
		must(err, "router query ("+phase+")")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("FAIL: router query %d/%d during %s: %d %s", i+1, qn, phase, resp.StatusCode, body)
		}
	}
}

func runCluster(bin, scratch string, n int) {
	dataDir := filepath.Join(scratch, "cluster-data")
	leaderAddr, f1Addr, f2Addr, routerAddr := freeAddr(), freeAddr(), freeAddr(), freeAddr()
	leaderURL := "http://" + leaderAddr
	f1URL, f2URL := "http://"+f1Addr, "http://"+f2Addr
	routerURL := "http://" + routerAddr
	replicas := leaderURL + "," + f1URL + "," + f2URL

	leader := start(bin, leaderAddr, dataDir)
	defer func() { leader.Process.Kill(); leader.Wait() }() //nolint:errcheck
	waitHealthy(leaderURL)
	f1 := startFollower(bin, f1Addr, leaderURL)
	defer func() { f1.Process.Kill(); f1.Wait() }() //nolint:errcheck
	f2 := startFollower(bin, f2Addr, leaderURL)
	defer func() { f2.Process.Kill(); f2.Wait() }() //nolint:errcheck
	waitHealthy(f1URL)
	waitHealthy(f2URL)
	router := startRouter(bin, routerAddr, replicas)
	defer func() { router.Process.Kill(); router.Wait() }() //nolint:errcheck
	waitHealthy(routerURL)

	// The create goes through the router: a write, forwarded to the leader.
	post(routerURL, "/v1/indexes", map[string]any{
		"name": "crash", "agg": "count", "dynamic": true,
		"keys": seq(0, 5000), "eps_abs": 100,
	})

	// Single-writer insert stream through the router. Only responses
	// acknowledged durable:true count as acked; anything else is retried
	// (idempotently — a duplicate rejection means the key is in).
	acked := make([]float64, 0, n)
	nextKey := 1e7
	insertOne := func(phase string) {
		k := nextKey
		nextKey++
		deadline := time.Now().Add(20 * time.Second)
		for {
			var resp insertResponse
			code := postStatus(routerURL, "/v1/indexes/crash/insert",
				map[string]any{"records": []record{{Key: k, Measure: 1}}}, &resp)
			if code == http.StatusOK && resp.Inserted == 1 {
				if !resp.Durable {
					log.Fatalf("insert %g during %s: accepted but not durable", k, phase)
				}
				acked = append(acked, k)
				return
			}
			if code == http.StatusOK {
				// Duplicate from a retried ambiguous attempt: present, and
				// its first (lost) response was the durable one.
				acked = append(acked, k)
				return
			}
			if time.Now().After(deadline) {
				log.Fatalf("insert %g during %s: status %d, never acknowledged", k, phase, code)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	third := n / 3
	for i := 0; i < third; i++ {
		insertOne("steady state")
	}
	assertAvailability(routerURL, "steady state", 30)
	waitCaughtUp(leaderURL, f1URL, "crash")
	waitCaughtUp(leaderURL, f2URL, "crash")

	// Write fencing: a follower refuses writes and names the leader.
	raw, _ := json.Marshal(map[string]any{"records": []record{{Key: 5, Measure: 1}}})
	resp, err := http.Post(f1URL+"/v1/indexes/crash/insert", "application/json", bytes.NewReader(raw))
	must(err, "follower insert probe")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("X-Polyfit-Leader") != leaderURL {
		log.Fatalf("FAIL: follower write fencing: status %d, leader hint %q",
			resp.StatusCode, resp.Header.Get("X-Polyfit-Leader"))
	}
	log.Printf("phase 1 ok: %d inserts acked, followers caught up, writes fenced", len(acked))

	// Phase 2: kill -9 a follower mid-stream. The router must stay fully
	// available, and the restarted follower must rejoin mid-stream.
	must(f1.Process.Kill(), "kill follower")
	f1.Wait() //nolint:errcheck
	dropIdleConns()
	assertAvailability(routerURL, "follower down", 30)
	for i := 0; i < third; i++ {
		insertOne("follower down")
	}
	f1 = startFollower(bin, f1Addr, leaderURL)
	defer func() { f1.Process.Kill(); f1.Wait() }() //nolint:errcheck
	waitHealthy(f1URL)
	waitCaughtUp(leaderURL, f1URL, "crash")
	log.Printf("phase 2 ok: follower survived kill -9 and rejoined mid-stream (%d acked)", len(acked))

	// Phase 3: kill -9 the leader. Reads keep answering from the
	// followers; the restarted leader must hold every acked insert.
	must(leader.Process.Kill(), "kill leader")
	leader.Wait() //nolint:errcheck
	dropIdleConns()
	assertAvailability(routerURL, "leader down", 30)
	leader = start(bin, leaderAddr, dataDir)
	defer func() { leader.Process.Kill(); leader.Wait() }() //nolint:errcheck
	waitHealthy(leaderURL)
	dropIdleConns()
	for i := 0; i < n-2*third; i++ {
		insertOne("leader restarted")
	}
	waitCaughtUp(leaderURL, f1URL, "crash")
	waitCaughtUp(leaderURL, f2URL, "crash")
	log.Printf("phase 3 ok: leader survived kill -9, inserts resumed (%d acked)", len(acked))

	// Zero durable-acknowledged-insert loss, verified on the leader with
	// the exact-fallback probe (width-0.5 window holds exactly one key).
	lost := 0
	for _, k := range acked {
		var q queryResponse
		postJSON(leaderURL, "/v1/indexes/crash/query",
			map[string]any{"lo": k - 0.5, "hi": k, "eps_rel": 0.01}, &q)
		if !q.Exact || q.Value != 1 {
			lost++
			if lost <= 5 {
				log.Printf("LOST acknowledged insert %g (exact=%v value=%g)", k, q.Exact, q.Value)
			}
		}
	}
	if lost > 0 {
		log.Fatalf("FAIL: %d/%d acknowledged inserts lost across leader kill -9", lost, len(acked))
	}

	// Bitwise identity at the acked watermark: the followers report the
	// leader's end sequences, so their answers must be byte-identical.
	for _, body := range []string{
		`{"lo":0,"hi":1e12}`,
		fmt.Sprintf(`{"lo":%g,"hi":%g}`, 1e7-0.5, nextKey-1),
		`{"lo":100,"hi":4000,"eps_rel":0.05}`,
	} {
		want := rawQueryBytes(leaderURL, "crash", body)
		for _, fURL := range []string{f1URL, f2URL} {
			if got := rawQueryBytes(fURL, "crash", body); !bytes.Equal(got, want) {
				log.Fatalf("FAIL: follower %s answers %s with %s, leader %s", fURL, body, got, want)
			}
		}
	}

	var rst struct {
		Role           string `json:"role"`
		HedgedRequests int64  `json:"hedged_requests"`
		HedgeWins      int64  `json:"hedge_wins"`
		Replicas       []struct {
			Healthy bool `json:"healthy"`
		} `json:"replicas"`
	}
	getJSON(routerURL+"/v1/stats", &rst)
	healthy := 0
	for _, r := range rst.Replicas {
		if r.Healthy {
			healthy++
		}
	}
	if rst.Role != "router" || healthy != 3 {
		log.Fatalf("FAIL: router stats after recovery: role=%q healthy=%d/3", rst.Role, healthy)
	}
	log.Printf("PASS: cluster survived follower and leader kill -9 with zero acked-insert loss; "+
		"%d acked, followers byte-identical at watermark, router hedged %d requests (%d hedge wins)",
		len(acked), rst.HedgedRequests, rst.HedgeWins)
}
