// benchdiff compares two polyfit-bench JSON snapshots row by row and prints
// a benchstat-style delta table. The container that runs CI has no network
// access (and our snapshots are JSON, not Go benchmark text), so the
// comparator is self-contained rather than shelling out to benchstat; the
// output mirrors its old/new/delta columns.
//
// Usage:
//
//	go run ./cmd/benchdiff -old BENCH_PR6.json -new /tmp/bench-head.json
//
// With -old omitted, the baseline embedded in -new (polyfit-bench
// -baseline) is used. -fail makes regressions beyond -threshold exit
// non-zero; the default is report-only so the CI step stays non-blocking —
// quick runs on shared runners are too noisy to gate merges on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// Result mirrors cmd/polyfit-bench's row schema.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// Snapshot mirrors cmd/polyfit-bench's file schema. Baseline is decoded
// lazily so a snapshot with an embedded baseline can serve as both sides.
type Snapshot struct {
	Schema   string          `json:"schema"`
	Notes    string          `json:"notes"`
	Results  []Result        `json:"results"`
	Baseline json.RawMessage `json:"baseline"`
}

func load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != "polyfit-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, s.Schema)
	}
	return &s, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline snapshot (default: the baseline embedded in -new)")
	newPath := flag.String("new", "", "snapshot to compare against the baseline")
	threshold := flag.Float64("threshold", 10, "percent change below which a row counts as unchanged")
	fail := flag.Bool("fail", false, "exit non-zero when any row regresses beyond the threshold")
	flag.Parse()
	if *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	var base *Snapshot
	if *oldPath != "" {
		if base, err = load(*oldPath); err != nil {
			log.Fatal(err)
		}
	} else {
		if len(cur.Baseline) == 0 {
			log.Fatalf("%s embeds no baseline; pass -old", *newPath)
		}
		base = &Snapshot{}
		if err := json.Unmarshal(cur.Baseline, base); err != nil {
			log.Fatalf("embedded baseline: %v", err)
		}
	}

	old := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	names := make([]string, 0, len(cur.Results))
	seen := make(map[string]bool)
	for _, r := range cur.Results {
		names = append(names, r.Name)
		seen[r.Name] = true
	}
	sort.Strings(names)
	byName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		byName[r.Name] = r
	}

	fmt.Printf("%-50s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, name := range names {
		nr := byName[name]
		or, ok := old[name]
		if !ok {
			fmt.Printf("%-50s %14s %14.1f %9s\n", name, "—", nr.NsPerOp, "new")
			continue
		}
		pct := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		mark := ""
		switch {
		case pct <= -*threshold:
			mark = "faster"
		case pct >= *threshold:
			mark = "SLOWER"
			regressions++
		}
		fmt.Printf("%-50s %14.1f %14.1f %+8.1f%% %s\n", name, or.NsPerOp, nr.NsPerOp, pct, mark)
	}
	dropped := 0
	for _, r := range base.Results {
		if !seen[r.Name] {
			dropped++
		}
	}
	if dropped > 0 {
		fmt.Printf("# %d baseline rows have no counterpart in the new snapshot\n", dropped)
	}
	if regressions > 0 {
		fmt.Printf("# %d rows regressed beyond %.0f%%\n", regressions, *threshold)
		if *fail {
			os.Exit(1)
		}
	}
}
