// Command polyfit-datagen writes the synthetic stand-in datasets (DESIGN.md
// §1.5) to CSV so they can be inspected or fed to polyfit-cli.
//
// Usage:
//
//	polyfit-datagen -dataset hki   -n 900000 -out hki.csv
//	polyfit-datagen -dataset tweet -n 1000000 -out tweet.csv
//	polyfit-datagen -dataset osm   -n 2000000 -out osm.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "tweet", "hki | tweet | osm")
		n       = flag.Int("n", 100_000, "number of records")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	var f *os.File
	if *out != "" {
		var cerr error
		f, cerr = os.Create(*out)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "error:", cerr)
			os.Exit(1)
		}
		w = f
	}

	var err error
	switch *dataset {
	case "hki":
		keys, measures := data.GenHKI(*n, *seed)
		err = data.WriteCSV1D(w, keys, measures)
	case "tweet":
		keys := data.GenTweet(*n, *seed)
		ones := make([]float64, len(keys))
		for i := range ones {
			ones[i] = 1
		}
		err = data.WriteCSV1D(w, keys, ones)
	case "osm":
		xs, ys := data.GenOSM(*n, *seed)
		err = data.WriteCSV2D(w, xs, ys)
	default:
		err = fmt.Errorf("unknown dataset %q (want hki, tweet or osm)", *dataset)
	}
	if err == nil && f != nil {
		// A failed close can mean the last buffered CSV rows never reached
		// disk, so it is an error like any other.
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
