// Command polyfit-experiments regenerates the paper's evaluation tables and
// figures (Section VII + appendix) on the synthetic stand-in datasets.
//
// Usage:
//
//	polyfit-experiments                  # run everything at default scale
//	polyfit-experiments -run table5      # one experiment
//	polyfit-experiments -markdown        # emit EXPERIMENTS.md-ready markdown
//	polyfit-experiments -tweet 1000000   # paper-scale TWEET dataset
//	polyfit-experiments -fast            # trimmed sweeps (CI-sized)
//	polyfit-experiments -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runID    = flag.String("run", "", "run a single experiment id (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		markdown = flag.Bool("markdown", false, "render tables as markdown")
		fast     = flag.Bool("fast", false, "trimmed parameter sweeps")
		hkiN     = flag.Int("hki", 0, "HKI dataset size (default 150000; paper 0.9M)")
		tweetN   = flag.Int("tweet", 0, "TWEET dataset size (default 200000; paper 1M)")
		osmN     = flag.Int("osm", 0, "OSM dataset size (default 120000; paper 100M)")
		queries  = flag.Int("queries", 0, "queries per workload (default 1000)")
		seed     = flag.Int64("seed", 0, "workload/dataset seed (default 42)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{
		HKISize:   *hkiN,
		TweetSize: *tweetN,
		OSMSize:   *osmN,
		Queries:   *queries,
		Seed:      *seed,
		Fast:      *fast,
	}

	render := func(t *experiments.Table) {
		if *markdown {
			t.RenderMarkdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}

	start := time.Now()
	if *runID != "" {
		t, err := experiments.Run(*runID, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		render(t)
		return
	}
	for _, id := range experiments.IDs() {
		t, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error in %s: %v\n", id, err)
			os.Exit(1)
		}
		render(t)
	}
	fmt.Fprintf(os.Stderr, "all experiments completed in %v\n", time.Since(start).Round(time.Second))
}
