// Command polyfit-lint runs the project-specific static-analysis suite
// (internal/lint) over the module and reports invariant violations:
// atomic/plain access mixing, unguarded access to annotated fields,
// Result values returned without a certified Bound, unclassifiable errors
// on exported paths, float contamination of //polyfit:nofloat functions,
// and unchecked Sync/Close on write-opened files.
//
// Usage:
//
//	polyfit-lint [-json] [-only atomicmix,lockguard] [dir]
//
// dir defaults to the current directory; the enclosing module is analyzed.
// Exit status is 1 when any finding survives //lint:ignore suppression,
// 2 on operational failure (parse error, type error, no module).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "polyfit-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	m, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polyfit-lint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(m, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "polyfit-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "polyfit-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
