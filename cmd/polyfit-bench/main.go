// polyfit-bench runs the repository's core performance probes — index
// construction (serial and parallel), segment location, point queries, and
// raw minimax fitting — through testing.Benchmark and writes the results as
// a JSON snapshot. The committed snapshots (BENCH_PR2.json, ...) seed the
// repo's performance trajectory: each perf-focused PR records before/after
// numbers that later sessions can diff against.
//
// Usage:
//
//	go run ./cmd/polyfit-bench [-out BENCH.json] [-quick] [-baseline FILE]
//	                           [-load] [-load-only] [-load-dur 2s]
//
// -quick shrinks the datasets for a fast smoke run (CI uses the go test
// bench smoke instead; this flag is for local iteration). -baseline embeds
// a previous snapshot's results under "baseline" so one file carries the
// before/after pair.
//
// -load adds a closed-loop load-generator section: an in-process
// internal/server instance (real HTTP via httptest, admission limits
// deliberately capped at GOMAXPROCS executing + 2×GOMAXPROCS queued) is
// driven by N closed-loop workers — each issues a query, waits for the
// answer, immediately issues the next — for a fixed wall-clock window per
// point. Each point records delivered throughput, p50/p99 latency of
// successful queries, and the shed rate (fraction answered 429 by
// admission control), so the overload-control behavior of the serving
// layer is pinned next to the microbenchmarks. -load-only skips the
// microbenchmark probes and runs just the load sweep.
//
// The load section ends with a repeat-heavy sweep: Zipf(1.2)-skewed repeats
// of the same range set against a result-cache-enabled server and an
// uncached control, recording the achieved hit rate, cached-vs-uncached
// latency quantiles, and how many queued queries were answered by batched
// group sweeps (see internal/server cache.go and batcher.go).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	polyfit "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/minimax"
	"repro/internal/persist"
	"repro/internal/poly"
	"repro/internal/server"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"` // iterations the measurement averaged over
}

// LoadPoint is one closed-loop load-generator measurement: `workers`
// clients in a request-response loop against the serving layer for
// `duration`, with the admission limits capped so overload is reachable.
type LoadPoint struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	DurationMS float64 `json:"duration_ms"`
	Requests   int64   `json:"requests"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"` // 429s from admission control
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughput_qps"` // successful queries per second
	P50us      float64 `json:"p50_us"`         // latency of successful queries
	P99us      float64 `json:"p99_us"`
	ShedRate   float64 `json:"shed_rate"` // shed / requests

	// Repeat-heavy sweep extras (zero unless the point ran against a
	// cache-enabled server): result-cache hit rate over the window and the
	// number of queries answered by batched group sweeps while queued.
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	BatchedQueries int64   `json:"batched_queries,omitempty"`
	BatchedGroups  int64   `json:"batched_groups,omitempty"`

	// Cluster sweep extras (zero unless the point ran through the
	// replication router): replica count behind the router, hedge counters
	// over the window, and follower staleness quantiles sampled while the
	// point ran (only the churn row samples them).
	Replicas       int     `json:"replicas,omitempty"`
	HedgedRequests int64   `json:"hedged_requests,omitempty"`
	HedgeWins      int64   `json:"hedge_wins,omitempty"`
	StalenessP50MS float64 `json:"staleness_p50_ms,omitempty"`
	StalenessMaxMS float64 `json:"staleness_max_ms,omitempty"`
}

// Snapshot is the file format.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"go_max_procs"`
	Notes      string      `json:"notes,omitempty"`
	Results    []Result    `json:"results"`
	Load       []LoadPoint `json:"load,omitempty"`
	Baseline   any         `json:"baseline,omitempty"`
}

func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
	fmt.Printf("%-40s %14.1f ns/op %8d B/op %6d allocs/op (n=%d)\n",
		res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.N)
	return res
}

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	quick := flag.Bool("quick", false, "shrink datasets for a fast smoke run")
	baseline := flag.String("baseline", "", "previous snapshot to embed under \"baseline\"")
	notes := flag.String("notes", "", "free-form notes recorded in the snapshot")
	load := flag.Bool("load", false, "also run the closed-loop serving load sweep")
	loadOnly := flag.Bool("load-only", false, "run only the load sweep, skipping the microbenchmark probes")
	loadDur := flag.Duration("load-dur", 2*time.Second, "wall-clock window per load point")
	flag.Parse()

	var results []Result
	if !*loadOnly {
		results = microBenchmarks(*quick)
	}
	var loadPoints []LoadPoint
	if *load || *loadOnly {
		dur := *loadDur
		if *quick && dur > 300*time.Millisecond {
			dur = 300 * time.Millisecond
		}
		loadPoints = runLoad(*quick, dur)
	}

	snap := Snapshot{
		Schema:     "polyfit-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Notes:      *notes,
		Results:    results,
		Load:       loadPoints,
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatalf("read baseline: %v", err)
		}
		var b any
		if err := json.Unmarshal(raw, &b); err != nil {
			log.Fatalf("parse baseline: %v", err)
		}
		snap.Baseline = b
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d results, %d load points)\n", *out, len(results), len(loadPoints))
}

// microBenchmarks runs the testing.Benchmark probe suite and returns the
// measurements.
func microBenchmarks(quick bool) []Result {
	nBuild, nFine := 20_000, 200_000
	if quick {
		nBuild, nFine = 2_000, 10_000
	}
	buildKeys := data.GenTweet(nBuild, 7)
	fineKeys := data.GenTweet(nFine, 7)
	hkiKeys, hkiVals := data.GenHKI(nBuild, 2)
	queries := data.RangeQueriesFromKeys(fineKeys, 1024, 4)

	var results []Result

	// Construction: the Fig. 14c configuration (coarse) and the fine-index
	// configuration where segmentation cost dominates, serial vs parallel.
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		results = append(results, measure(fmt.Sprintf("build/count_n%dk_d50/workers%d", nBuild/1000, w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildCount(buildKeys, core.Options{Degree: 2, Delta: 50, NoFallback: true, Parallelism: w}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		results = append(results, measure(fmt.Sprintf("build/count_n%dk_d0.5/workers%d", nFine/1000, w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildCount(fineKeys, core.Options{Degree: 2, Delta: 0.5, NoFallback: true, Parallelism: w}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	results = append(results, measure("build/max_hki_d100/workers1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildMax(hkiKeys, hkiVals, core.Options{Degree: 2, Delta: 100, NoFallback: true}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Locate: learned root vs binary search on a fine index.
	fine, err := core.BuildCount(fineKeys, core.Options{Degree: 2, Delta: 0.5, NoFallback: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# fine index: %d segments, root %d KiB of %d KiB total\n",
		fine.NumSegments(), fine.RootSizeBytes()/1024, fine.SizeBytes()/1024)
	probes := make([]float64, 1024)
	for i, q := range queries {
		probes[i&1023] = q.U
	}
	results = append(results, measure("locate/root", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fine.Locate(probes[i&1023])
		}
	}))
	results = append(results, measure("locate/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fine.LocateBinary(probes[i&1023])
		}
	}))

	// Point queries on the fine index (the Table V shape: locate-dominated).
	results = append(results, measure("query/point_count_fine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i&1023]
			if _, err := fine.RangeSum(q.L, q.U); err != nil {
				b.Fatal(err)
			}
		}
	}))
	maxIx, err := core.BuildMax(hkiKeys, hkiVals, core.Options{Degree: 2, Delta: 100, NoFallback: true})
	if err != nil {
		log.Fatal(err)
	}
	qHKI := data.RangeQueriesFromKeys(hkiKeys, 1024, 5)
	results = append(results, measure("query/point_max", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := qHKI[i&1023]
			if _, _, err := maxIx.RangeExtremum(q.L, q.U); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Sharding: scatter-gather vs unsharded on the fine index — build
	// (K shards fit concurrently), a shard-spanning range, a shard-interior
	// range (single-shard fast path), and the shard-routed batch path.
	const benchShards = 4
	results = append(results, measure(fmt.Sprintf("sharded/build_count_n%dk_d0.5_k%d", nFine/1000, benchShards), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildSharded(core.Count, fineKeys, nil, benchShards, core.Options{Degree: 2, Delta: 0.5, NoFallback: true}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	shardedFine, err := core.BuildSharded(core.Count, fineKeys, nil, benchShards, core.Options{Degree: 2, Delta: 0.5, NoFallback: true})
	if err != nil {
		log.Fatal(err)
	}
	spanLo, spanHi := fineKeys[10], fineKeys[len(fineKeys)-10]
	results = append(results, measure("sharded/query_span_all_shards", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := shardedFine.RangeSum(spanLo, spanHi); err != nil {
				b.Fatal(err)
			}
		}
	}))
	inLo := fineKeys[len(fineKeys)/8]
	inHi := fineKeys[len(fineKeys)/8+50]
	results = append(results, measure("sharded/query_shard_interior", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := shardedFine.RangeSum(inLo, inHi); err != nil {
				b.Fatal(err)
			}
		}
	}))
	batchRanges := make([]core.Range, len(queries))
	for i, q := range queries {
		batchRanges[i] = core.Range{Lo: q.L, Hi: q.U}
	}
	results = append(results, measure(fmt.Sprintf("sharded/query_batch_%d", len(batchRanges)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := shardedFine.QueryBatch(batchRanges); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Coefficient encodings: build cost (serial and parallel), footprint,
	// and the query paths per forced encoding on the fine COUNT index — the
	// size/speed tradeoff of the succinct segment store. The unforced rows
	// above already pay the auto-selection cost (certify-and-compare), so
	// these rows isolate each encoding's own build and query price.
	for _, enc := range []core.Encoding{core.EncRaw, core.EncF32, core.EncPacked} {
		enc := enc
		encOpt := core.Options{Degree: 2, Delta: 0.5, NoFallback: true, Encoding: enc}
		for _, w := range []int{1, 4} {
			w := w
			results = append(results, measure(fmt.Sprintf("encoding/build_count_n%dk_d0.5_%s/workers%d", nFine/1000, enc, w), func(b *testing.B) {
				b.ReportAllocs()
				o := encOpt
				o.Parallelism = w
				for i := 0; i < b.N; i++ {
					if _, err := core.BuildCount(fineKeys, o); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
		encIx, err := core.BuildCount(fineKeys, encOpt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# encoding %-8s: certified %s, %d segments, %d B total (coeff %d B, root %d B)\n",
			enc, encIx.Encoding(), encIx.NumSegments(), encIx.SizeBytes(),
			encIx.CoeffSizeBytes(), encIx.RootSizeBytes())
		results = append(results, measure(fmt.Sprintf("encoding/query_point_%s", enc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i&1023]
				if _, err := encIx.RangeSum(q.L, q.U); err != nil {
					b.Fatal(err)
				}
			}
		}))
		results = append(results, measure(fmt.Sprintf("encoding/query_batch_%d_%s", len(batchRanges), enc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := encIx.QueryBatch(batchRanges); err != nil {
					b.Fatal(err)
				}
			}
		}))
		encSharded, err := core.BuildSharded(core.Count, fineKeys, nil, benchShards, encOpt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, measure(fmt.Sprintf("encoding/sharded_query_batch_%d_%s", len(batchRanges), enc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := encSharded.QueryBatch(batchRanges); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Public builder API: the polyfit.New construction path and the
	// Index-interface point query, pinning the (intended: negligible)
	// overhead of the uniform Result contract over the raw core calls.
	pub, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: fineKeys},
		polyfit.WithDelta(0.5), polyfit.WithFallback(false))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, measure("public/build_count_via_new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := polyfit.New(polyfit.Spec{Agg: polyfit.Count, Keys: buildKeys},
				polyfit.WithDelta(50), polyfit.WithFallback(false)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	results = append(results, measure("public/query_point_count_fine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i&1023]
			if _, err := pub.Query(polyfit.Range{Lo: q.L, Hi: q.U}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Raw fitting: throwaway-Fitter wrapper vs reused Fitter on a
	// segmentation-sized window.
	winKeys := hkiKeys[:91]
	winVals := hkiVals[:91]
	results = append(results, measure("fit/fitpoly_deg2_n91", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := minimax.FitPoly(winKeys, winVals, 2); err != nil {
				b.Fatal(err)
			}
		}
	}))
	results = append(results, measure("fit/fitter_deg2_n91", func(b *testing.B) {
		b.ReportAllocs()
		f := minimax.NewFitter()
		var spare poly.Poly
		for i := 0; i < b.N; i++ {
			fit, err := f.Fit(winKeys, winVals, 2, -1, spare)
			if err != nil {
				b.Fatal(err)
			}
			spare = fit.P.P
		}
	}))

	// Durability: snapshot write (dynamic marshal + CRC envelope + fsync +
	// rename) and full recovery (snapshot read + restore + WAL replay) for
	// a dynamic index with a populated delta buffer — the costs behind the
	// serving layer's background snapshotter and boot-time recovery.
	persistDir, err := os.MkdirTemp("", "polyfit-bench-persist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(persistDir)
	dyn, err := core.NewDynamic(core.Count, fineKeys, make([]float64, len(fineKeys)),
		core.Options{Degree: 2, Delta: 50})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := dyn.Insert(1e9+float64(i), 1); err != nil {
			log.Fatal(err)
		}
	}
	store, err := persist.Open(persistDir)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, measure(fmt.Sprintf("persist/snapshot_write_n%dk", nFine/1000), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blob, err := dyn.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			if err := store.WriteSnapshot("bench", blob); err != nil {
				b.Fatal(err)
			}
		}
	}))
	walRecs := make([]persist.Record, 512)
	for i := range walRecs {
		walRecs[i] = persist.Record{Key: 2e9 + float64(i), Measure: 1}
	}
	wal, _, _, err := persist.OpenWAL(filepath.Join(persistDir, "bench-wal.pf"))
	if err != nil {
		log.Fatal(err)
	}
	if err := wal.Append(walRecs); err != nil {
		log.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		log.Fatal(err)
	}
	results = append(results, measure(fmt.Sprintf("persist/recover_n%dk_wal512", nFine/1000), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blob, err := store.ReadSnapshot("bench")
			if err != nil {
				b.Fatal(err)
			}
			restored, err := core.RestoreDynamic(blob)
			if err != nil {
				b.Fatal(err)
			}
			w, recs, _, err := persist.OpenWAL(filepath.Join(persistDir, "bench-wal.pf"))
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range recs {
				if err := restored.Insert(r.Key, r.Measure); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	return results
}

// runLoad drives an in-process serving instance with closed-loop workers
// over real HTTP and measures delivered throughput, successful-query
// latency quantiles, and the shed rate per worker count. The admission
// limits are pinned low (GOMAXPROCS executing, 2×GOMAXPROCS queued) so
// the sweep actually crosses from underload into overload: the low worker
// counts characterize latency, the high ones characterize shedding.
func runLoad(quick bool, dur time.Duration) []LoadPoint {
	n := 200_000
	if quick {
		n = 20_000
	}
	keys := data.GenTweet(n, 7)
	qs := data.RangeQueriesFromKeys(keys, 1024, 9)

	procs := runtime.GOMAXPROCS(0)
	srv, err := server.NewDurable(server.Config{
		MaxConcurrentQueries: procs,
		MaxQueuedQueries:     2 * procs,
		Logf:                 func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	// Sharded on purpose: scatter-gather parks the admission-slot holder on
	// the gather channel, so under a closed-loop flood the slot is genuinely
	// contended and the queue/shed path is exercised even on small machines.
	if _, err := srv.Create(server.CreateRequest{
		Name: "bench", Agg: "count", Keys: keys, EpsAbs: 100, Shards: 4,
	}); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 512
	}
	url := ts.URL + "/v1/indexes/bench/query"

	// Pre-marshal distinct query bodies: 1024 different ranges so the
	// single-flight coalescer sees a realistic mix, not one query repeated
	// (which would collapse the whole sweep onto a handful of executions).
	bodies := make([][]byte, len(qs))
	for i, q := range qs {
		bodies[i] = fmt.Appendf(nil, `{"lo":%g,"hi":%g}`, q.L, q.U)
	}

	var points []LoadPoint
	for _, workers := range []int{1, 4, 16, 64, 256} {
		p := runLoadPoint(client, "load/closed_loop", url, bodies, workers, dur)
		points = append(points, p)
		fmt.Printf("%-32s %10.0f q/s  p50 %8.1fµs  p99 %8.1fµs  shed %5.1f%%  (%d req, %d err)\n",
			p.Name, p.Throughput, p.P50us, p.P99us, 100*p.ShedRate, p.Requests, p.Errors)
	}

	// Overload sweep: heavy batch requests (64Ki ranges ≈ 10ms of execution
	// each) hold the admission slot long enough that concurrent arrivals
	// genuinely contend for it — even on a single-CPU machine, where
	// sub-millisecond point queries run to completion between scheduler
	// preemptions and the queue never fills. This is the sweep that pins a
	// non-trivial shed rate: the slots and queue saturate, and the server's
	// answer to the excess is a fast 429, not an unbounded pile-up.
	nRanges := 1 << 16
	if quick {
		nRanges = 1 << 14
	}
	batchURL := ts.URL + "/v1/indexes/bench/batch"
	batchBodies := make([][]byte, 4)
	for v := range batchBodies {
		var buf bytes.Buffer
		buf.WriteString(`{"ranges":[`)
		for i := 0; i < nRanges; i++ {
			q := qs[(i*7+v*131)%len(qs)]
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, `{"lo":%g,"hi":%g}`, q.L, q.U)
		}
		buf.WriteString(`]}`)
		batchBodies[v] = buf.Bytes()
	}
	for _, workers := range []int{16, 64} {
		p := runLoadPoint(client, fmt.Sprintf("load/overload_batch%d", nRanges), batchURL, batchBodies, workers, dur)
		points = append(points, p)
		fmt.Printf("%-32s %10.0f q/s  p50 %8.1fµs  p99 %8.1fµs  shed %5.1f%%  (%d req, %d err)\n",
			p.Name, p.Throughput, p.P50us, p.P99us, 100*p.ShedRate, p.Requests, p.Errors)
	}

	points = append(points, runRepeatLoad(keys, qs, dur)...)
	points = append(points, runClusterLoad(keys, qs, dur)...)
	return points
}

// runClusterLoad is the replicated-tier sweep: an in-process leader, two
// WAL-streaming followers, and the hedged scatter-gather router (see
// internal/cluster), all over real HTTP. The rows pin what replication
// buys and costs: read latency through the router with 1 replica vs 3,
// hedged vs unhedged tail latency over the same 3 replicas, and how stale
// the followers actually run while a single-writer insert churn streams
// at the leader.
func runClusterLoad(keys []float64, qs []data.RangeQuery, dur time.Duration) []LoadPoint {
	bodies := make([][]byte, len(qs))
	for i, q := range qs {
		bodies[i] = fmt.Appendf(nil, `{"lo":%g,"hi":%g}`, q.L, q.U)
	}

	// Durable leader: followers join from its snapshot and stream its WALs.
	dir, err := os.MkdirTemp("", "polyfit-bench-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	leader, err := server.NewDurable(server.Config{
		DataDir:          dir,
		SnapshotInterval: -1,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	lts := httptest.NewServer(leader)
	defer func() { lts.Close(); leader.Close() }() //nolint:errcheck
	if _, err := leader.Create(server.CreateRequest{
		Name: "bench", Agg: "count", Keys: keys, EpsAbs: 100, Dynamic: true,
	}); err != nil {
		log.Fatal(err)
	}

	var fts []*httptest.Server
	for i := 0; i < 2; i++ {
		f, err := server.NewDurable(server.Config{
			Join:             lts.URL,
			ReplPollInterval: 2 * time.Millisecond,
			ReplWait:         50 * time.Millisecond,
			SnapshotInterval: -1,
			Logf:             func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(f)
		defer func() { ts.Close(); f.Close() }() //nolint:errcheck
		fts = append(fts, ts)
	}
	// Let both followers finish their initial snapshot join before any row
	// measures: a router read served mid-join would measure the join, not
	// the steady state.
	for _, ts := range fts {
		deadline := time.Now().Add(15 * time.Second)
		for {
			st := fetchServerStats(ts.Client(), ts.URL)
			if len(st.AckWatermark) > 0 {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("follower %s never joined", ts.URL)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	routed := func(name string, replicas []string, hedge time.Duration, workers int, churn bool) LoadPoint {
		rt, err := cluster.NewRouter(cluster.RouterConfig{
			Replicas:      replicas,
			HedgeDelay:    hedge,
			ProbeInterval: 20 * time.Millisecond,
			Logf:          func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		rts := httptest.NewServer(rt)
		defer func() { rts.Close(); rt.Close() }()
		client := rts.Client()
		if tr, ok := client.Transport.(*http.Transport); ok {
			tr.MaxIdleConns = 512
			tr.MaxIdleConnsPerHost = 512
		}

		// Churn rows run a single-writer insert stream at the leader (the
		// replication determinism contract wants exactly one writer) and
		// sample the followers' reported staleness while the queries run.
		stopChurn := make(chan struct{})
		var churnWG sync.WaitGroup
		staleCh := make(chan []float64, 1)
		if churn {
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				lc := lts.Client()
				for i := 0; ; i++ {
					select {
					case <-stopChurn:
						return
					default:
					}
					body := fmt.Appendf(nil, `{"records":[{"key":%g,"measure":1}]}`, 9e9+float64(i))
					resp, err := lc.Post(lts.URL+"/v1/indexes/bench/insert", "application/json",
						bytes.NewReader(body))
					if err != nil {
						continue
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()              //nolint:errcheck
				}
			}()
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				var samples []float64
				tick := time.NewTicker(10 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stopChurn:
						staleCh <- samples
						return
					case <-tick.C:
						for _, ts := range fts {
							st := fetchServerStats(ts.Client(), ts.URL)
							samples = append(samples, float64(st.StalenessMS))
						}
					}
				}
			}()
		}

		p := runLoadPoint(client, name, rts.URL+"/v1/indexes/bench/query", bodies, workers, dur)
		if churn {
			close(stopChurn)
			churnWG.Wait()
			samples := <-staleCh
			sort.Float64s(samples)
			p.StalenessP50MS = percentile(samples, 50)
			p.StalenessMaxMS = percentile(samples, 100)
		}
		p.Replicas = len(replicas)

		var rst struct {
			HedgedRequests int64 `json:"hedged_requests"`
			HedgeWins      int64 `json:"hedge_wins"`
		}
		resp, err := client.Get(rts.URL + "/v1/stats")
		if err != nil {
			log.Fatalf("router stats: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
			log.Fatalf("decode router stats: %v", err)
		}
		resp.Body.Close() //nolint:errcheck
		p.HedgedRequests = rst.HedgedRequests
		p.HedgeWins = rst.HedgeWins
		fmt.Printf("%-32s %10.0f q/s  p50 %8.1fµs  p99 %8.1fµs  hedged %d (won %d)  staleness p50 %.0fms max %.0fms\n",
			p.Name, p.Throughput, p.P50us, p.P99us, p.HedgedRequests, p.HedgeWins,
			p.StalenessP50MS, p.StalenessMaxMS)
		return p
	}

	all := []string{lts.URL, fts[0].URL, fts[1].URL}
	return []LoadPoint{
		routed("cluster/router_1replica", []string{lts.URL}, 2*time.Millisecond, 16, false),
		routed("cluster/router_3replicas_hedged", all, 2*time.Millisecond, 16, false),
		routed("cluster/router_3replicas_unhedged", all, -1, 16, false),
		routed("cluster/staleness_under_churn", all, 2*time.Millisecond, 16, true),
	}
}

// runRepeatLoad is the repeat-heavy sweep: workers draw from the same 1024
// ranges through a Zipf(1.2) skew — the head ranges repeat constantly, the
// tail barely at all, the access pattern result caching is for — against a
// cache-enabled server and an otherwise identical uncached control. The
// paired rows pin the cache's effect on p50/p99 and throughput, the hit
// rate the skew actually achieves, and how many queued queries flowed
// through batched group sweeps instead of waiting for solo slots.
func runRepeatLoad(keys []float64, qs []data.RangeQuery, dur time.Duration) []LoadPoint {
	bodies := make([][]byte, len(qs))
	for i, q := range qs {
		bodies[i] = fmt.Appendf(nil, `{"lo":%g,"hi":%g}`, q.L, q.U)
	}
	procs := runtime.GOMAXPROCS(0)

	var points []LoadPoint
	for _, cfg := range []struct {
		name       string
		cacheBytes int64
	}{
		{"load/zipf_uncached", 0},
		{"load/zipf_cached", 32 << 20},
	} {
		// Queue depth 32 (vs 2×GOMAXPROCS in the main sweep) so the
		// contended row below can form real groups: batched admission turns
		// that depth into amortised sweeps instead of serialized waits.
		srv, err := server.NewDurable(server.Config{
			MaxConcurrentQueries: procs,
			MaxQueuedQueries:     32,
			CacheBytes:           cfg.cacheBytes,
			Logf:                 func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Dynamic on purpose: the cache must prove itself under the
		// generation-keyed invalidation path, not the static gen-0 fast case.
		if _, err := srv.Create(server.CreateRequest{
			Name: "bench", Agg: "count", Keys: keys, EpsAbs: 100, Dynamic: true,
		}); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		client := ts.Client()
		if tr, ok := client.Transport.(*http.Transport); ok {
			tr.MaxIdleConns = 512
			tr.MaxIdleConnsPerHost = 512
		}
		url := ts.URL + "/v1/indexes/bench/query"

		for _, workers := range []int{4, 16, 64} {
			before := fetchServerStats(client, ts.URL)
			sample := func(w int) func() []byte {
				r := rand.New(rand.NewSource(int64(97 + w)))
				z := rand.NewZipf(r, 1.2, 8, uint64(len(bodies)-1))
				return func() []byte { return bodies[z.Uint64()] }
			}
			p := runLoadPointWith(client, cfg.name, url, sample, workers, dur)
			after := fetchServerStats(client, ts.URL)
			if lookups := (after.CacheHits + after.CacheMisses) - (before.CacheHits + before.CacheMisses); lookups > 0 {
				p.CacheHitRate = float64(after.CacheHits-before.CacheHits) / float64(lookups)
			}
			p.BatchedQueries = after.BatchedQueries - before.BatchedQueries
			p.BatchedGroups = after.BatchedGroups - before.BatchedGroups
			points = append(points, p)
			fmt.Printf("%-32s %10.0f q/s  p50 %8.1fµs  p99 %8.1fµs  shed %5.1f%%  hit %5.1f%%  batched %d/%d\n",
				p.Name, p.Throughput, p.P50us, p.P99us, 100*p.ShedRate, 100*p.CacheHitRate,
				p.BatchedQueries, p.BatchedGroups)
		}

		// Contended row: two background clients stream heavy batch requests
		// that occupy the execution slots, so the zipf point queries actually
		// pile up in the admission queue — the regime batched admission is
		// for. batched_queries/batched_groups record how many rode a group
		// sweep (and how big the groups got) instead of waiting for solo
		// slots; distinct-range misses are what batch, repeats still coalesce
		// or hit the cache above the queue.
		var heavy bytes.Buffer
		heavy.WriteString(`{"ranges":[`)
		for i := 0; i < 1<<14; i++ {
			q := qs[(i*7)%len(qs)]
			if i > 0 {
				heavy.WriteByte(',')
			}
			fmt.Fprintf(&heavy, `{"lo":%g,"hi":%g}`, q.L, q.U)
		}
		heavy.WriteString(`]}`)
		stopBatch := make(chan struct{})
		var batchWG sync.WaitGroup
		for k := 0; k < 2; k++ {
			batchWG.Add(1)
			go func() {
				defer batchWG.Done()
				for {
					select {
					case <-stopBatch:
						return
					default:
					}
					resp, err := client.Post(ts.URL+"/v1/indexes/bench/batch", "application/json",
						bytes.NewReader(heavy.Bytes()))
					if err != nil {
						continue
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()              //nolint:errcheck
				}
			}()
		}
		before := fetchServerStats(client, ts.URL)
		sample := func(w int) func() []byte {
			r := rand.New(rand.NewSource(int64(211 + w)))
			z := rand.NewZipf(r, 1.2, 8, uint64(len(bodies)-1))
			return func() []byte { return bodies[z.Uint64()] }
		}
		p := runLoadPointWith(client, cfg.name+"_contended", url, sample, 16, dur)
		after := fetchServerStats(client, ts.URL)
		if lookups := (after.CacheHits + after.CacheMisses) - (before.CacheHits + before.CacheMisses); lookups > 0 {
			p.CacheHitRate = float64(after.CacheHits-before.CacheHits) / float64(lookups)
		}
		p.BatchedQueries = after.BatchedQueries - before.BatchedQueries
		p.BatchedGroups = after.BatchedGroups - before.BatchedGroups
		points = append(points, p)
		fmt.Printf("%-32s %10.0f q/s  p50 %8.1fµs  p99 %8.1fµs  shed %5.1f%%  hit %5.1f%%  batched %d/%d\n",
			p.Name, p.Throughput, p.P50us, p.P99us, 100*p.ShedRate, 100*p.CacheHitRate,
			p.BatchedQueries, p.BatchedGroups)
		close(stopBatch)
		batchWG.Wait()

		ts.Close()
		srv.Close() //nolint:errcheck
	}
	return points
}

// fetchServerStats reads /v1/stats for counter deltas around a load point.
func fetchServerStats(client *http.Client, base string) server.ServerStats {
	var st server.ServerStats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		log.Fatalf("fetch /v1/stats: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatalf("decode /v1/stats: %v", err)
	}
	return st
}

func runLoadPoint(client *http.Client, name, url string, bodies [][]byte, workers int, dur time.Duration) LoadPoint {
	sample := func(w int) func() []byte {
		i := w * 131 // offset each worker's walk so they don't march in lockstep
		return func() []byte {
			b := bodies[i%len(bodies)]
			i++
			return b
		}
	}
	return runLoadPointWith(client, name, url, sample, workers, dur)
}

// runLoadPointWith is runLoadPoint with a pluggable per-worker body
// sampler — the repeat-heavy sweep uses it to draw Zipf-skewed repeats
// instead of a round-robin walk.
func runLoadPointWith(client *http.Client, name, url string, sample func(w int) func() []byte, workers int, dur time.Duration) LoadPoint {
	var ok, shed, errs atomic.Int64
	latCh := make(chan []float64, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]float64, 0, 4096)
			next := sample(w)
			for {
				select {
				case <-stop:
					latCh <- lats
					return
				default:
				}
				body := next()
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				el := float64(time.Since(t0).Nanoseconds()) / 1e3
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()              //nolint:errcheck
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					lats = append(lats, el)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	var all []float64
	for w := 0; w < workers; w++ {
		all = append(all, <-latCh...)
	}
	sort.Float64s(all)
	total := ok.Load() + shed.Load() + errs.Load()
	p := LoadPoint{
		Name:       fmt.Sprintf("%s/workers%d", name, workers),
		Workers:    workers,
		DurationMS: float64(elapsed.Nanoseconds()) / 1e6,
		Requests:   total,
		OK:         ok.Load(),
		Shed:       shed.Load(),
		Errors:     errs.Load(),
		Throughput: float64(ok.Load()) / elapsed.Seconds(),
		P50us:      percentile(all, 50),
		P99us:      percentile(all, 99),
	}
	if total > 0 {
		p.ShedRate = float64(shed.Load()) / float64(total)
	}
	return p
}

// percentile reads the p-th percentile (nearest-rank) from an ascending
// slice; 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
